//! The binary trace format: header layout, varint primitives, and the
//! per-access delta token codec.
//!
//! # Format (version 1)
//!
//! ```text
//! header:
//!   magic    8 B   b"DMTTRACE"
//!   version  2 B   u16 LE (currently 1)
//!   flags    2 B   u16 LE (reserved, 0)
//!   name     2 B   u16 LE length + UTF-8 bytes (workload name)
//!   regions  2 B   u16 LE count, then per region: base u64 LE, len u64 LE
//! body:      one varint token per access (see below)
//! trailer:   token 0, then varint access count, then 8 B LE FNV-1a
//!            checksum over (VA LE bytes, write byte) of every access
//! ```
//!
//! Each access is one LEB128 varint token. Virtual addresses are
//! delta-encoded against the previous access (wrapping 64-bit
//! arithmetic), the signed delta is zigzag-folded, and the write bit is
//! packed into the low bit:
//!
//! ```text
//! token = (zigzag(va - prev_va) << 1 | write) + 2
//! ```
//!
//! The `+ 2` reserves token `0` for the end-of-trace marker and `1`
//! for future extensions, and makes the token space total: every
//! `(delta, write)` pair — including the pathological ±2⁶³ deltas the
//! property tests throw at it — encodes losslessly. Tokens are encoded
//! through `u128` so the shift cannot overflow; sequential accesses
//! (small deltas) still take one or two bytes, which is what makes the
//! format ~8× smaller than a naive fixed-width record on
//! sequential-heavy traces.
//!
//! # Format (version 2, chunked)
//!
//! Version 2 makes the body seekable without giving up the delta
//! codec. The header gains one field after the region table:
//!
//! ```text
//! chunk_len  8 B  u64 LE, accesses per chunk (> 0)
//! ```
//!
//! The body is the same token stream, except the delta base `prev_va`
//! resets to 0 at every chunk boundary — i.e. before access ordinals
//! `0, chunk_len, 2·chunk_len, …`. Boundaries are placed purely by
//! access ordinal, so the byte stream is a function of the access
//! sequence alone, never of how the producer batched its writes. The
//! trailer is identical to v1 (and still covers the whole trace), so a
//! streaming [`TraceReader`] replays v2 exactly like v1.
//!
//! After the trailer comes the chunk index — one fixed 32-byte record
//! per chunk — and a fixed 32-byte footer that locates it from the end
//! of the file:
//!
//! ```text
//! index record: offset u64 LE   file offset of the chunk's first token
//!               start  u64 LE   ordinal of its first access (i·chunk_len)
//!               len    u64 LE   accesses in the chunk
//!               hash   u64 LE   FNV-1a over the chunk's accesses
//! footer:       index_offset u64 LE, chunk_count u64 LE,
//!               index_fnv u64 LE (FNV-1a over the raw index bytes),
//!               magic 8 B b"DMTIDX01"
//! ```
//!
//! [`TraceFile`](crate::TraceFile) parses the footer + index from a
//! zero-copy mapping and decodes any chunk independently (fresh delta
//! base, per-chunk checksum), which is what makes sharded replay
//! possible.
//!
//! [`TraceReader`]: crate::TraceReader

use crate::error::TraceError;
use std::io::{Read, Write};

/// File magic.
pub const MAGIC: [u8; 8] = *b"DMTTRACE";

/// Format version for unchunked (streaming-only) traces.
pub const VERSION: u16 = 1;

/// Format version for chunked (seekable) traces.
pub const VERSION_CHUNKED: u16 = 2;

/// Footer magic closing a chunked trace.
pub const INDEX_MAGIC: [u8; 8] = *b"DMTIDX01";

/// Bytes per chunk index record.
pub const INDEX_RECORD_BYTES: u64 = 32;

/// Bytes of the chunked-trace footer.
pub const FOOTER_BYTES: u64 = 32;

/// End-of-trace marker token.
pub const TOKEN_END: u128 = 0;

/// Reserved token (rejected by this version's reader).
pub const TOKEN_RESERVED: u128 = 1;

/// Bytes per access of the naive fixed-width representation this
/// format is measured against (8 B VA + 8 B cycle slot + 1 B flags —
/// the in-memory layout a `Vec<Access>`-of-records dump would use).
pub const NAIVE_BYTES_PER_ACCESS: u64 = 17;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Streaming FNV-1a checksum over decoded accesses.
#[derive(Debug, Clone, Copy)]
pub struct TraceHash(u64);

impl Default for TraceHash {
    fn default() -> Self {
        TraceHash(FNV_OFFSET)
    }
}

impl TraceHash {
    /// Fold one access into the hash.
    pub fn update(&mut self, va: u64, write: bool) {
        for b in va.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self.0 = (self.0 ^ write as u64).wrapping_mul(FNV_PRIME);
    }

    /// The digest so far.
    pub fn digest(&self) -> u64 {
        self.0
    }
}

/// FNV-1a 64-bit over raw bytes (used for the chunk index checksum).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// One record of a chunked trace's index: where a chunk's tokens live,
/// which accesses it holds, and their checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkIndexEntry {
    /// File offset of the chunk's first token byte.
    pub offset: u64,
    /// Ordinal of the chunk's first access (`i * chunk_len`).
    pub start: u64,
    /// Accesses in the chunk (`chunk_len`, except possibly the last).
    pub len: u64,
    /// FNV-1a digest over the chunk's accesses.
    pub hash: u64,
}

impl ChunkIndexEntry {
    /// Append the 32-byte LE record.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.start.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&self.hash.to_le_bytes());
    }

    /// Parse one 32-byte LE record.
    pub fn read_from<R: Read>(r: &mut R) -> Result<ChunkIndexEntry, TraceError> {
        Ok(ChunkIndexEntry {
            offset: read_u64(r)?,
            start: read_u64(r)?,
            len: read_u64(r)?,
            hash: read_u64(r)?,
        })
    }
}

/// Fold a signed delta into an unsigned value with small magnitudes
/// staying small (zigzag encoding).
pub fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Encode one access as its varint token, given the previous VA.
pub fn encode_token(prev_va: u64, va: u64, write: bool, out: &mut Vec<u8>) {
    let delta = va.wrapping_sub(prev_va) as i64;
    let token = ((zigzag(delta) as u128) << 1 | write as u128) + 2;
    write_varint(token, out);
}

/// Decode the payload of a non-marker token into `(va, write)`.
pub fn decode_token(prev_va: u64, token: u128) -> Result<(u64, bool), TraceError> {
    debug_assert!(token >= 2);
    let rec = token - 2;
    let write = rec & 1 == 1;
    let zig = rec >> 1;
    if zig > u64::MAX as u128 {
        return Err(TraceError::Corrupt("delta exceeds 64 bits"));
    }
    let delta = unzigzag(zig as u64);
    Ok((prev_va.wrapping_add(delta as u64), write))
}

/// Append a LEB128 varint.
pub fn write_varint(mut v: u128, out: &mut Vec<u8>) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Read one LEB128 varint. At most 19 bytes (⌈128/7⌉) are accepted.
pub fn read_varint<R: Read>(r: &mut R) -> Result<u128, TraceError> {
    let mut v: u128 = 0;
    for shift in (0..).step_by(7) {
        if shift >= 133 {
            return Err(TraceError::Corrupt("varint longer than 128 bits"));
        }
        let b = read_u8(r)?;
        let payload = (b & 0x7f) as u128;
        if shift == 126 && payload > 3 {
            return Err(TraceError::Corrupt("varint longer than 128 bits"));
        }
        v |= payload << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
    }
    unreachable!("loop returns or errors");
}

/// Read exactly one byte.
pub fn read_u8<R: Read>(r: &mut R) -> Result<u8, TraceError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Read a little-endian `u16`.
pub fn read_u16<R: Read>(r: &mut R) -> Result<u16, TraceError> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

/// Read a little-endian `u64`.
pub fn read_u64<R: Read>(r: &mut R) -> Result<u64, TraceError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// One mapped region recorded in the trace header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRegion {
    /// Base virtual address.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Trace header metadata: enough to rebuild the address space a replay
/// needs, independent of the workload generator that produced it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceMeta {
    /// Workload name ("GUPS", "Redis", ...).
    pub name: String,
    /// The regions the workload mapped.
    pub regions: Vec<TraceRegion>,
    /// Accesses per chunk for the v2 (seekable) framing; `0` selects
    /// the v1 unchunked framing, which `write_header` emits
    /// byte-identically to older writers.
    pub chunk_len: u64,
}

impl TraceMeta {
    /// Capture the metadata of a live workload.
    pub fn of_workload(w: &dyn dmt_workloads::gen::Workload) -> TraceMeta {
        TraceMeta {
            name: w.name().to_string(),
            regions: w
                .regions()
                .iter()
                .map(|r| TraceRegion {
                    base: r.base.raw(),
                    len: r.len,
                })
                .collect(),
            chunk_len: 0,
        }
    }

    /// The same metadata with the v2 chunked framing selected.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero (that value means "v1 framing" and
    /// must be set by leaving the field alone, not by this method).
    pub fn chunked(mut self, chunk_len: u64) -> TraceMeta {
        assert!(chunk_len > 0, "chunk_len must be positive");
        self.chunk_len = chunk_len;
        self
    }

    /// The recorded regions as simulator [`Region`]s.
    ///
    /// [`Region`]: dmt_workloads::gen::Region
    pub fn to_regions(&self) -> Vec<dmt_workloads::gen::Region> {
        self.regions
            .iter()
            .map(|r| dmt_workloads::gen::Region {
                base: dmt_mem::VirtAddr(r.base),
                len: r.len,
                label: "trace",
            })
            .collect()
    }

    /// Total mapped bytes.
    pub fn footprint(&self) -> u64 {
        self.regions.iter().map(|r| r.len).sum()
    }

    /// Serialize the header.
    ///
    /// # Errors
    ///
    /// Fails if the name or region list exceeds the format's 16-bit
    /// length fields, or on I/O errors.
    pub fn write_header<W: Write>(&self, w: &mut W) -> std::io::Result<u64> {
        let name = self.name.as_bytes();
        if name.len() > u16::MAX as usize {
            return Err(std::io::Error::other("workload name too long for header"));
        }
        if self.regions.len() > u16::MAX as usize {
            return Err(std::io::Error::other("too many regions for header"));
        }
        w.write_all(&MAGIC)?;
        let version = if self.chunk_len > 0 {
            VERSION_CHUNKED
        } else {
            VERSION
        };
        w.write_all(&version.to_le_bytes())?;
        w.write_all(&0u16.to_le_bytes())?; // flags
        w.write_all(&(name.len() as u16).to_le_bytes())?;
        w.write_all(name)?;
        w.write_all(&(self.regions.len() as u16).to_le_bytes())?;
        for r in &self.regions {
            w.write_all(&r.base.to_le_bytes())?;
            w.write_all(&r.len.to_le_bytes())?;
        }
        let mut n = 16 + name.len() as u64 + self.regions.len() as u64 * 16;
        if self.chunk_len > 0 {
            w.write_all(&self.chunk_len.to_le_bytes())?;
            n += 8;
        }
        Ok(n)
    }

    /// Parse and validate a header.
    ///
    /// # Errors
    ///
    /// Rejects wrong magic, unknown versions, non-zero flags, and
    /// non-UTF-8 names; propagates I/O errors ([`TraceError::Truncated`]
    /// on short reads).
    pub fn read_header<R: Read>(r: &mut R) -> Result<TraceMeta, TraceError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic(magic));
        }
        let version = read_u16(r)?;
        if version != VERSION && version != VERSION_CHUNKED {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let flags = read_u16(r)?;
        if flags != 0 {
            return Err(TraceError::Corrupt("unknown header flags"));
        }
        let name_len = read_u16(r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name =
            String::from_utf8(name).map_err(|_| TraceError::Corrupt("name is not UTF-8"))?;
        let region_count = read_u16(r)? as usize;
        let mut regions = Vec::with_capacity(region_count);
        for _ in 0..region_count {
            regions.push(TraceRegion {
                base: read_u64(r)?,
                len: read_u64(r)?,
            });
        }
        let chunk_len = if version == VERSION_CHUNKED {
            let cl = read_u64(r)?;
            if cl == 0 {
                return Err(TraceError::Corrupt("chunked trace with zero chunk length"));
            }
            cl
        } else {
            0
        };
        Ok(TraceMeta {
            name,
            regions,
            chunk_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_roundtrips_extremes() {
        for d in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 0x7fff_ffff] {
            assert_eq!(unzigzag(zigzag(d)), d, "delta {d}");
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn varint_roundtrips_boundaries() {
        for v in [
            0u128,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u64::MAX as u128,
            (u64::MAX as u128) << 1 | 1,
            u128::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(v, &mut buf);
            let got = read_varint(&mut buf.as_slice()).unwrap();
            assert_eq!(got, v);
        }
    }

    #[test]
    fn varint_rejects_overlong() {
        // 20 continuation bytes can encode nothing valid.
        let buf = [0xffu8; 20];
        assert!(matches!(
            read_varint(&mut buf.as_slice()),
            Err(TraceError::Corrupt(_))
        ));
        // 19 bytes whose top payload overflows 128 bits.
        let mut buf = vec![0xffu8; 18];
        buf.push(0x7f);
        assert!(matches!(
            read_varint(&mut buf.as_slice()),
            Err(TraceError::Corrupt(_))
        ));
    }

    #[test]
    fn token_roundtrips_worst_case_deltas() {
        for (prev, va) in [
            (0u64, 0u64),
            (0, u64::MAX),
            (u64::MAX, 0),
            (5, 4),
            (1 << 40, (1 << 40) + 4096),
        ] {
            for write in [false, true] {
                let mut buf = Vec::new();
                encode_token(prev, va, write, &mut buf);
                let token = read_varint(&mut buf.as_slice()).unwrap();
                assert!(token >= 2);
                assert_eq!(decode_token(prev, token).unwrap(), (va, write));
            }
        }
    }

    #[test]
    fn sequential_deltas_are_tiny() {
        // A 64-byte stride encodes in two bytes.
        let mut buf = Vec::new();
        encode_token(0x1000, 0x1040, false, &mut buf);
        assert!(buf.len() <= 2, "{} bytes", buf.len());
    }

    #[test]
    fn header_roundtrips() {
        let meta = TraceMeta {
            name: "GUPS".into(),
            regions: vec![
                TraceRegion {
                    base: 1 << 30,
                    len: 256 << 20,
                },
                TraceRegion {
                    base: 1 << 40,
                    len: 4096,
                },
            ],
            chunk_len: 0,
        };
        let mut buf = Vec::new();
        let n = meta.write_header(&mut buf).unwrap();
        assert_eq!(n, buf.len() as u64);
        let got = TraceMeta::read_header(&mut buf.as_slice()).unwrap();
        assert_eq!(got, meta);
        assert_eq!(got.footprint(), (256 << 20) + 4096);
        let regions = got.to_regions();
        assert_eq!(regions[0].base, dmt_mem::VirtAddr(1 << 30));
        assert_eq!(regions[1].len, 4096);
    }

    #[test]
    fn header_rejections() {
        // Wrong magic.
        let mut buf = b"NOTATRCE".to_vec();
        buf.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            TraceMeta::read_header(&mut buf.as_slice()),
            Err(TraceError::BadMagic(_))
        ));
        // Future version.
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&99u16.to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]);
        assert!(matches!(
            TraceMeta::read_header(&mut buf.as_slice()),
            Err(TraceError::UnsupportedVersion(99))
        ));
        // Truncated mid-header.
        let meta = TraceMeta {
            name: "x".into(),
            regions: vec![TraceRegion { base: 0, len: 1 }],
            chunk_len: 0,
        };
        let mut buf = Vec::new();
        meta.write_header(&mut buf).unwrap();
        for cut in 0..buf.len() {
            let r = TraceMeta::read_header(&mut &buf[..cut]);
            assert!(
                matches!(r, Err(TraceError::Truncated)),
                "cut at {cut} gave {r:?}"
            );
        }
    }

    #[test]
    fn v2_header_roundtrips_and_v1_is_unchanged() {
        let v1 = TraceMeta {
            name: "GUPS".into(),
            regions: vec![TraceRegion {
                base: 1 << 30,
                len: 4096,
            }],
            chunk_len: 0,
        };
        let mut v1_bytes = Vec::new();
        let n1 = v1.write_header(&mut v1_bytes).unwrap();
        // v1 framing (chunk_len == 0) must stay byte-identical to what
        // pre-v2 writers produced: version field 1, no chunk_len field.
        assert_eq!(v1_bytes[8..10], VERSION.to_le_bytes());
        assert_eq!(n1, 16 + 4 + 16);

        let v2 = v1.clone().chunked(512);
        let mut v2_bytes = Vec::new();
        let n2 = v2.write_header(&mut v2_bytes).unwrap();
        assert_eq!(v2_bytes[8..10], VERSION_CHUNKED.to_le_bytes());
        assert_eq!(n2, n1 + 8);
        let got = TraceMeta::read_header(&mut v2_bytes.as_slice()).unwrap();
        assert_eq!(got, v2);
        assert_eq!(got.chunk_len, 512);
        // Everything before the version byte and after it (up to the
        // trailing chunk_len) is shared with v1.
        assert_eq!(v1_bytes[..8], v2_bytes[..8]);
        assert_eq!(v1_bytes[10..], v2_bytes[10..v2_bytes.len() - 8]);
    }

    #[test]
    fn v2_header_rejects_zero_chunk_len_and_truncation() {
        let meta = TraceMeta {
            name: "x".into(),
            regions: vec![],
            chunk_len: 7,
        };
        let mut buf = Vec::new();
        meta.write_header(&mut buf).unwrap();
        // Zero out the chunk_len field.
        let n = buf.len();
        buf[n - 8..].fill(0);
        assert!(matches!(
            TraceMeta::read_header(&mut buf.as_slice()),
            Err(TraceError::Corrupt(_))
        ));
        // Truncating the chunk_len field reads as a short header.
        let mut buf = Vec::new();
        meta.write_header(&mut buf).unwrap();
        let cut = buf.len() - 3;
        assert!(matches!(
            TraceMeta::read_header(&mut &buf[..cut]),
            Err(TraceError::Truncated)
        ));
    }

    #[test]
    fn chunk_index_entry_roundtrips() {
        let e = ChunkIndexEntry {
            offset: 0xdead_beef,
            start: 4096,
            len: 512,
            hash: 0x0123_4567_89ab_cdef,
        };
        let mut buf = Vec::new();
        e.write_to(&mut buf);
        assert_eq!(buf.len() as u64, INDEX_RECORD_BYTES);
        assert_eq!(ChunkIndexEntry::read_from(&mut buf.as_slice()).unwrap(), e);
    }

    #[test]
    fn fnv1a_matches_streaming_hash() {
        // The raw-bytes helper and the per-access hash share constants:
        // hashing an access's wire bytes directly must agree.
        let mut h = TraceHash::default();
        h.update(0xabcd, true);
        let mut bytes = 0xabcdu64.to_le_bytes().to_vec();
        bytes.push(1);
        assert_eq!(fnv1a(&bytes), h.digest());
    }

    #[test]
    fn hash_is_order_sensitive() {
        let mut a = TraceHash::default();
        a.update(1, false);
        a.update(2, true);
        let mut b = TraceHash::default();
        b.update(2, true);
        b.update(1, false);
        assert_ne!(a.digest(), b.digest());
        // And write-bit sensitive.
        let mut c = TraceHash::default();
        c.update(1, true);
        c.update(2, true);
        assert_ne!(a.digest(), c.digest());
    }
}
