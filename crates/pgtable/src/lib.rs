//! x86-style radix page tables and hardware walkers for the DMT
//! reproduction.
//!
//! * [`pte`] — the 64-bit entry layout (present/accessed/dirty/PS bits).
//! * [`radix`] — 4- and 5-level tables in simulated physical memory, with
//!   the [`radix::RadixPageTable::install_table`] hook DMT-Linux uses to
//!   place last-level tables inside TEAs.
//! * [`walk`] — the single-dimension hardware walker (Figure 1), charging
//!   cycles through the cache hierarchy and PWC.
//! * [`nested`] — the 24-step two-dimensional walker (Figure 2) with
//!   guest-PWC and nested-PWC acceleration.
//! * [`shadow`] — shadow page tables with sync-event accounting
//!   (§2.1.2–2.1.3).
//!
//! # Example
//!
//! ```
//! use dmt_pgtable::{radix::RadixPageTable, pte::PteFlags, walk};
//! use dmt_cache::hierarchy::MemoryHierarchy;
//! use dmt_mem::{PhysMemory, PageSize, PhysAddr, VirtAddr};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut pm = PhysMemory::new_bytes(16 << 20);
//! let mut pt = RadixPageTable::new(&mut pm, 4)?;
//! pt.map(&mut pm, VirtAddr(0x1000), PhysAddr(0x2000), PageSize::Size4K, PteFlags::WRITABLE)?;
//! let mut hier = MemoryHierarchy::default();
//! let out = walk::walk_dimension(&pt, &mut pm, VirtAddr(0x1000),
//!                                walk::WalkDim::Native, &mut hier, None)?;
//! assert_eq!(out.refs(), 4); // a cold native walk fetches 4 PTEs
//! # Ok(())
//! # }
//! ```

pub mod nested;
pub mod pte;
pub mod radix;
pub mod shadow;
pub mod walk;

pub use nested::{nested_walk, NestedCaches, NestedWalkOutcome};
pub use pte::{Pte, PteFlags};
pub use radix::RadixPageTable;
pub use shadow::ShadowPageTable;
pub use walk::{walk_dimension, WalkDim, WalkOutcome, WalkStep};

use core::fmt;
use dmt_mem::MemError;

/// Errors produced by page-table operations and walks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PtError {
    /// Address not aligned to the requested page size.
    Unaligned {
        /// The offending address.
        addr: u64,
    },
    /// A present mapping already exists at the address.
    AlreadyMapped {
        /// The virtual address.
        va: u64,
    },
    /// No present mapping exists at the address.
    NotMapped {
        /// The virtual address.
        va: u64,
    },
    /// A huge-page leaf blocks the requested table operation.
    HugeConflict {
        /// The virtual address.
        va: u64,
    },
    /// Underlying physical-memory failure.
    Mem(MemError),
}

impl fmt::Display for PtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtError::Unaligned { addr } => write!(f, "address {addr:#x} is not size-aligned"),
            PtError::AlreadyMapped { va } => write!(f, "virtual address {va:#x} already mapped"),
            PtError::NotMapped { va } => write!(f, "virtual address {va:#x} not mapped"),
            PtError::HugeConflict { va } => {
                write!(f, "huge-page leaf conflicts with table operation at {va:#x}")
            }
            PtError::Mem(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl std::error::Error for PtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PtError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for PtError {
    fn from(e: MemError) -> Self {
        PtError::Mem(e)
    }
}

#[cfg(test)]
mod proptests {
    use crate::pte::PteFlags;
    use crate::radix::RadixPageTable;
    use dmt_mem::{PageSize, PhysAddr, PhysMemory, VirtAddr};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any set of disjoint 4 KiB mappings translates back exactly, and
        /// unmapping removes precisely the targeted pages.
        #[test]
        fn map_translate_agree(pages in prop::collection::btree_set(0u64..4096, 1..50)) {
            let mut pm = PhysMemory::new_bytes(64 << 20);
            let mut pt = RadixPageTable::new(&mut pm, 4).unwrap();
            for &p in &pages {
                let va = VirtAddr(p << 12);
                let pa = PhysAddr((p + 10_000) << 12);
                pt.map(&mut pm, va, pa, PageSize::Size4K, PteFlags::WRITABLE).unwrap();
            }
            for &p in &pages {
                let va = VirtAddr(p << 12);
                let (pa, size) = pt.translate(&pm, va).unwrap();
                prop_assert_eq!(size, PageSize::Size4K);
                prop_assert_eq!(pa.raw() >> 12, p + 10_000);
            }
            // Unmap half; the other half must survive.
            let all: Vec<u64> = pages.iter().copied().collect();
            for &p in all.iter().step_by(2) {
                pt.unmap(&mut pm, VirtAddr(p << 12), PageSize::Size4K).unwrap();
            }
            for (i, &p) in all.iter().enumerate() {
                let got = pt.translate(&pm, VirtAddr(p << 12));
                if i % 2 == 0 {
                    prop_assert!(got.is_none());
                } else {
                    prop_assert!(got.is_some());
                }
            }
        }

        /// Walk reference counts: cold 4-level walks fetch 4 entries for
        /// 4 KiB pages, 3 for 2 MiB, 2 for 1 GiB.
        #[test]
        fn walk_length_matches_leaf_level(idx in 0u64..512) {
            use crate::walk::{walk_dimension, WalkDim};
            use dmt_cache::hierarchy::MemoryHierarchy;
            let mut pm = PhysMemory::new_bytes(64 << 20);
            let mut pt = RadixPageTable::new(&mut pm, 4).unwrap();
            let mut hier = MemoryHierarchy::default();
            let va4k = VirtAddr(idx << 12);
            let va2m = VirtAddr((1 << 39) | (idx << 21));
            let va1g = VirtAddr((2 << 39) | (idx << 30));
            pt.map(&mut pm, va4k, PhysAddr(0x100_0000), PageSize::Size4K, PteFlags::default()).unwrap();
            pt.map(&mut pm, va2m, PhysAddr(0x20_0000), PageSize::Size2M, PteFlags::default()).unwrap();
            pt.map(&mut pm, va1g, PhysAddr(0x4000_0000), PageSize::Size1G, PteFlags::default()).unwrap();
            prop_assert_eq!(walk_dimension(&pt, &mut pm, va4k, WalkDim::Native, &mut hier, None).unwrap().refs(), 4);
            prop_assert_eq!(walk_dimension(&pt, &mut pm, va2m, WalkDim::Native, &mut hier, None).unwrap().refs(), 3);
            prop_assert_eq!(walk_dimension(&pt, &mut pm, va1g, WalkDim::Native, &mut hier, None).unwrap().refs(), 2);
        }
    }
}
