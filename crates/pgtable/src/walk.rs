//! The hardware page-table walker for one translation dimension.
//!
//! [`walk_dimension`] replays a radix walk the way the MMU would: consult
//! the page-walk cache, then fetch each remaining PTE through the cache
//! hierarchy, charging real cycles and recording a per-step trace (the raw
//! material for Figure 16). The same routine serves three roles:
//!
//! * the **native** walk of Figure 1 (up to 4 sequential references);
//! * the **guest dimension** of a 2D nested walk;
//! * the **host dimension** of a 2D nested walk, where the "virtual
//!   address" is a guest physical address and the PWC passed in is the
//!   nested PWC.

use crate::pte::Pte;
use crate::radix::RadixPageTable;
use crate::PtError;
use dmt_cache::hierarchy::MemoryHierarchy;
use dmt_cache::pwc::PageWalkCache;
use dmt_mem::addr::PTE_SIZE;
use dmt_mem::{MemoryOps, PageSize, PhysAddr, VirtAddr};

/// The deepest radix tree [`walk_dimension`] can descend in one
/// dimension: five levels (LA57). Fixed-size step-cycle buffers (e.g.
/// ASAP's timeliness adjustment) are sized by this — a single-dimension
/// walk never performs more PTE fetches.
pub const MAX_WALK_DEPTH: usize = 5;

/// Which translation dimension a walk step belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WalkDim {
    /// A native (single-dimension) walk.
    Native,
    /// A guest-page-table step of a 2D walk (square boxes in Figure 2).
    Guest,
    /// A host-page-table step of a 2D walk (circles in Figure 2).
    Host,
}

/// One PTE fetch performed by a walker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkStep {
    /// Dimension the fetched entry belongs to.
    pub dim: WalkDim,
    /// Radix level of the fetched entry (4 = root of a 4-level tree).
    pub level: u8,
    /// Host-physical address of the entry.
    pub pte_pa: PhysAddr,
    /// Cycles this fetch cost (where in the hierarchy it hit).
    pub cycles: u64,
}

/// The result of a completed hardware walk.
#[derive(Debug, Clone)]
pub struct WalkOutcome {
    /// Translated physical address.
    pub pa: PhysAddr,
    /// Page size of the final mapping.
    pub size: PageSize,
    /// Total cycles, including PWC lookup latency.
    pub cycles: u64,
    /// Every PTE fetch, in order.
    pub steps: Vec<WalkStep>,
}

impl WalkOutcome {
    /// Number of sequential memory references (PTE fetches).
    pub fn refs(&self) -> u64 {
        self.steps.len() as u64
    }
}

/// Walk one radix dimension for `va`, charging cycles against `hier`.
///
/// `pwc`, when provided, is consulted once (its latency is charged) and
/// filled as the walk descends. Accessed bits are set on the traversed
/// entries as real hardware does.
///
/// # Errors
///
/// Returns [`PtError::NotMapped`] if a non-present entry is reached.
pub fn walk_dimension<M: MemoryOps>(
    pt: &RadixPageTable,
    pm: &mut M,
    va: VirtAddr,
    dim: WalkDim,
    hier: &mut MemoryHierarchy,
    mut pwc: Option<&mut PageWalkCache>,
) -> Result<WalkOutcome, PtError> {
    let mut cycles = 0u64;
    let mut level = pt.levels();
    let mut table = PhysAddr::from_pfn(pt.root());

    if let Some(p) = pwc.as_deref_mut() {
        cycles += p.latency();
        if let Some((hit_level, next_table)) = p.lookup_deepest(va) {
            // The cached entry at `hit_level` already provides the base of
            // the table below it.
            level = hit_level - 1;
            table = next_table;
        }
    }

    let mut steps = Vec::with_capacity(level as usize);
    loop {
        let slot = table + va.level_index(level) * PTE_SIZE;
        let (_, cyc) = hier.access(slot.raw());
        cycles += cyc;
        let pte = Pte(pm.read_word(slot));
        steps.push(WalkStep {
            dim,
            level,
            pte_pa: slot,
            cycles: cyc,
        });
        if !pte.present() {
            return Err(PtError::NotMapped { va: va.raw() });
        }
        pm.write_word(slot, pte.with_accessed().raw());
        if pte.is_leaf_at(level) {
            let size = match level {
                1 => PageSize::Size4K,
                2 => PageSize::Size2M,
                3 => PageSize::Size1G,
                _ => return Err(PtError::NotMapped { va: va.raw() }),
            };
            let pa = PhysAddr(pte.phys_addr().raw() + va.offset_in(size));
            return Ok(WalkOutcome {
                pa,
                size,
                cycles,
                steps,
            });
        }
        // Fill the PWC with this upper-level entry (levels 4..=2 only).
        if let Some(p) = pwc.as_deref_mut() {
            if (2..=4).contains(&level) {
                p.fill(va, level, pte.phys_addr());
            }
        }
        table = pte.phys_addr();
        level -= 1;
    }
}

/// A memo of traversed PTE words (post-`accessed`) keyed by slot PA,
/// for [`walk_dimension_cached`]. Only valid while the page tables are
/// quiescent — replay never remaps — so owners must drop it on any
/// teardown or remap.
#[derive(Debug, Clone, Default)]
pub struct PteMemo {
    words: dmt_mem::FastMap<u64, u64>,
}

impl PteMemo {
    /// Forget every memoized entry (tables changed).
    pub fn clear(&mut self) {
        self.words.clear();
    }
}

/// A completed walk without the per-step trace allocation —
/// [`walk_dimension_cached`]'s return shape.
#[derive(Debug, Clone, Copy)]
pub struct LeanWalk {
    /// Translated physical address.
    pub pa: PhysAddr,
    /// Page size of the final mapping.
    pub size: PageSize,
    /// Total cycles, including PWC lookup latency.
    pub cycles: u64,
    /// Sequential memory references (PTE fetches).
    pub refs: u64,
}

/// [`walk_dimension`] with the physical-memory word traffic memoized:
/// every *observable* operation — the PWC latency charge, lookup and
/// fills, and each per-slot `hier.access` — is issued exactly as the
/// uncached walker would, but a slot visited before skips the
/// `PhysMemory` word read and the (idempotent) accessed-bit write, and
/// no per-step `Vec` is allocated. The batched backends use this on
/// their fallback/vanilla walk paths; results are bit-identical to
/// [`walk_dimension`] by construction.
///
/// Non-present entries are *not* memoized (a later map could make them
/// present).
///
/// # Errors
///
/// Returns [`PtError::NotMapped`] if a non-present entry is reached.
pub fn walk_dimension_cached<M: MemoryOps>(
    pt: &RadixPageTable,
    pm: &mut M,
    va: VirtAddr,
    hier: &mut MemoryHierarchy,
    mut pwc: Option<&mut PageWalkCache>,
    memo: &mut PteMemo,
) -> Result<LeanWalk, PtError> {
    let mut cycles = 0u64;
    let mut level = pt.levels();
    let mut table = PhysAddr::from_pfn(pt.root());

    if let Some(p) = pwc.as_deref_mut() {
        cycles += p.latency();
        if let Some((hit_level, next_table)) = p.lookup_deepest(va) {
            level = hit_level - 1;
            table = next_table;
        }
    }

    let mut refs = 0u64;
    loop {
        let slot = table + va.level_index(level) * PTE_SIZE;
        let (_, cyc) = hier.access(slot.raw());
        cycles += cyc;
        refs += 1;
        let pte = if let Some(&word) = memo.words.get(&slot.raw()) {
            Pte(word)
        } else {
            let pte = Pte(pm.read_word(slot));
            if !pte.present() {
                return Err(PtError::NotMapped { va: va.raw() });
            }
            let pte = pte.with_accessed();
            pm.write_word(slot, pte.raw());
            // Memoize interior entries only: they are shared across
            // many VAs (high hit rate, bounded map), while leaves are
            // per-page — memoizing those would grow the map by one
            // entry per touched page for a near-zero hit rate on
            // big-footprint workloads.
            if !pte.is_leaf_at(level) {
                memo.words.insert(slot.raw(), pte.raw());
            }
            pte
        };
        if pte.is_leaf_at(level) {
            let size = match level {
                1 => PageSize::Size4K,
                2 => PageSize::Size2M,
                3 => PageSize::Size1G,
                _ => return Err(PtError::NotMapped { va: va.raw() }),
            };
            return Ok(LeanWalk {
                pa: PhysAddr(pte.phys_addr().raw() + va.offset_in(size)),
                size,
                cycles,
                refs,
            });
        }
        if let Some(p) = pwc.as_deref_mut() {
            if (2..=4).contains(&level) {
                p.fill(va, level, pte.phys_addr());
            }
        }
        table = pte.phys_addr();
        level -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pte::PteFlags;
    use dmt_cache::hierarchy::HierarchyConfig;
    use dmt_cache::pwc::PwcConfig;
    use dmt_mem::PhysMemory;

    fn setup_4k() -> (PhysMemory, RadixPageTable, VirtAddr) {
        let mut pm = PhysMemory::new_bytes(32 << 20);
        let mut pt = RadixPageTable::new(&mut pm, 4).unwrap();
        let va = VirtAddr(0x7f12_3456_7000);
        pt.map(&mut pm, va, PhysAddr(0x5000), PageSize::Size4K, PteFlags::WRITABLE)
            .unwrap();
        (pm, pt, va)
    }

    #[test]
    fn cold_native_walk_takes_four_references() {
        let (mut pm, pt, va) = setup_4k();
        let mut hier = MemoryHierarchy::new(HierarchyConfig::xeon_gold_6138());
        let out = walk_dimension(&pt, &mut pm, va, WalkDim::Native, &mut hier, None).unwrap();
        assert_eq!(out.refs(), 4);
        assert_eq!(out.pa, PhysAddr(0x5000));
        assert_eq!(out.size, PageSize::Size4K);
        // All four fetches missed to DRAM on a cold hierarchy.
        assert_eq!(out.cycles, 4 * 200);
        let levels: Vec<u8> = out.steps.iter().map(|s| s.level).collect();
        assert_eq!(levels, vec![4, 3, 2, 1]);
    }

    #[test]
    fn pwc_hit_skips_upper_levels() {
        let (mut pm, pt, va) = setup_4k();
        let mut hier = MemoryHierarchy::new(HierarchyConfig::xeon_gold_6138());
        let mut pwc = PageWalkCache::new(PwcConfig::xeon_gold_6138());
        // First walk warms the PWC (and caches).
        let first =
            walk_dimension(&pt, &mut pm, va, WalkDim::Native, &mut hier, Some(&mut pwc)).unwrap();
        assert_eq!(first.refs(), 4);
        // Second walk: PWC hit on the L2 entry leaves only the L1 fetch.
        let second =
            walk_dimension(&pt, &mut pm, va, WalkDim::Native, &mut hier, Some(&mut pwc)).unwrap();
        assert_eq!(second.refs(), 1);
        assert_eq!(second.steps[0].level, 1);
        // 1 cycle PWC + L1-cache hit for the leaf.
        assert_eq!(second.cycles, 1 + 4);
    }

    #[test]
    fn huge_page_walk_is_shorter() {
        let mut pm = PhysMemory::new_bytes(32 << 20);
        let mut pt = RadixPageTable::new(&mut pm, 4).unwrap();
        let va = VirtAddr(0x4000_0000);
        pt.map(&mut pm, va, PhysAddr(0x20_0000), PageSize::Size2M, PteFlags::default())
            .unwrap();
        let mut hier = MemoryHierarchy::new(HierarchyConfig::xeon_gold_6138());
        let out = walk_dimension(&pt, &mut pm, va + 0x1234, WalkDim::Native, &mut hier, None)
            .unwrap();
        assert_eq!(out.refs(), 3); // L4, L3, L2-leaf
        assert_eq!(out.size, PageSize::Size2M);
        assert_eq!(out.pa, PhysAddr(0x20_1234));
    }

    #[test]
    fn five_level_walk_takes_five_references() {
        let mut pm = PhysMemory::new_bytes(32 << 20);
        let mut pt = RadixPageTable::new(&mut pm, 5).unwrap();
        let va = VirtAddr(0x00aa_0000_0000_0000 & ((1 << 57) - 1));
        pt.map(&mut pm, va, PhysAddr(0x9000), PageSize::Size4K, PteFlags::default())
            .unwrap();
        let mut hier = MemoryHierarchy::new(HierarchyConfig::xeon_gold_6138());
        let out = walk_dimension(&pt, &mut pm, va, WalkDim::Native, &mut hier, None).unwrap();
        assert_eq!(out.refs(), 5);
    }

    #[test]
    fn walk_sets_accessed_bits() {
        let (mut pm, pt, va) = setup_4k();
        let mut hier = MemoryHierarchy::default();
        walk_dimension(&pt, &mut pm, va, WalkDim::Native, &mut hier, None).unwrap();
        let leaf = pt.entry(&pm, va, 1).unwrap();
        assert!(leaf.flags().contains(PteFlags::ACCESSED));
        let mid = pt.entry(&pm, va, 3).unwrap();
        assert!(mid.flags().contains(PteFlags::ACCESSED));
    }

    #[test]
    fn unmapped_address_errors() {
        let (mut pm, pt, _) = setup_4k();
        let mut hier = MemoryHierarchy::default();
        let err = walk_dimension(
            &pt,
            &mut pm,
            VirtAddr(0x1234_5000),
            WalkDim::Native,
            &mut hier,
            None,
        );
        assert!(matches!(err, Err(PtError::NotMapped { .. })));
    }

    #[test]
    fn cached_walk_is_bit_identical_to_the_uncached_walker() {
        // Two identical machines, interleaved mappings: every access
        // must produce the same (pa, size, cycles, refs) and leave the
        // PWC stats identical, memo warm or cold.
        let mk = || {
            let mut pm = PhysMemory::new_bytes(32 << 20);
            let mut pt = RadixPageTable::new(&mut pm, 4).unwrap();
            pt.map(&mut pm, VirtAddr(0x10_0000), PhysAddr(0x5000), PageSize::Size4K, PteFlags::WRITABLE)
                .unwrap();
            pt.map(&mut pm, VirtAddr(0x4000_0000), PhysAddr(0x20_0000), PageSize::Size2M, PteFlags::WRITABLE)
                .unwrap();
            (pm, pt)
        };
        let (mut pm_a, pt_a) = mk();
        let (mut pm_b, pt_b) = mk();
        let mut hier_a = MemoryHierarchy::default();
        let mut hier_b = MemoryHierarchy::default();
        let mut pwc_a = PageWalkCache::new(PwcConfig::xeon_gold_6138());
        let mut pwc_b = PageWalkCache::new(PwcConfig::xeon_gold_6138());
        let mut memo = PteMemo::default();
        let vas = [
            VirtAddr(0x10_0000),
            VirtAddr(0x4000_1234),
            VirtAddr(0x10_0000), // memo-warm revisits
            VirtAddr(0x4000_9999),
        ];
        for va in vas {
            let a = walk_dimension(&pt_a, &mut pm_a, va, WalkDim::Native, &mut hier_a, Some(&mut pwc_a))
                .unwrap();
            let b = walk_dimension_cached(&pt_b, &mut pm_b, va, &mut hier_b, Some(&mut pwc_b), &mut memo)
                .unwrap();
            assert_eq!((a.pa, a.size, a.cycles, a.refs()), (b.pa, b.size, b.cycles, b.refs), "{va:?}");
        }
        assert_eq!(pwc_a.stats(), pwc_b.stats());
        assert_eq!(hier_a.stats(), hier_b.stats());
        // The cached walker still set the accessed bits on first visit.
        let leaf = pt_b.entry(&pm_b, VirtAddr(0x10_0000), 1).unwrap();
        assert!(leaf.flags().contains(PteFlags::ACCESSED));
        // And it refuses unmapped addresses without memoizing them.
        let err = walk_dimension_cached(&pt_b, &mut pm_b, VirtAddr(0x9999_0000), &mut hier_b, None, &mut memo);
        assert!(matches!(err, Err(PtError::NotMapped { .. })));
    }

    #[test]
    fn warm_cache_walk_is_cheap_even_without_pwc() {
        let (mut pm, pt, va) = setup_4k();
        let mut hier = MemoryHierarchy::default();
        walk_dimension(&pt, &mut pm, va, WalkDim::Native, &mut hier, None).unwrap();
        let warm = walk_dimension(&pt, &mut pm, va, WalkDim::Native, &mut hier, None).unwrap();
        assert_eq!(warm.refs(), 4);
        assert_eq!(warm.cycles, 4 * 4); // four L1-cache hits
    }
}
