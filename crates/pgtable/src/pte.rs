//! x86-64 page-table entry layout.
//!
//! Only the architectural bits the simulation depends on are modeled:
//! present, writable, user, accessed, dirty, the page-size (PS) bit that
//! turns an L2/L3 entry into a huge-page leaf, no-execute, and the
//! physical frame number. DMT deliberately reuses these PTEs unchanged
//! (paper §3: "DMT does not create additional copies of PTEs"), so access
//! and dirty bits behave identically under every translation design.

use core::fmt;
use dmt_mem::{Pfn, PhysAddr};

/// Flag bits of a PTE (a subset of the x86-64 layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PteFlags(pub u64);

impl PteFlags {
    /// Entry is present.
    pub const PRESENT: PteFlags = PteFlags(1 << 0);
    /// Entry is writable.
    pub const WRITABLE: PteFlags = PteFlags(1 << 1);
    /// User-mode accessible.
    pub const USER: PteFlags = PteFlags(1 << 2);
    /// Accessed by hardware.
    pub const ACCESSED: PteFlags = PteFlags(1 << 5);
    /// Dirtied by hardware.
    pub const DIRTY: PteFlags = PteFlags(1 << 6);
    /// Page-size bit: this entry is a huge-page leaf (valid at L2/L3).
    pub const HUGE: PteFlags = PteFlags(1 << 7);
    /// No-execute.
    pub const NX: PteFlags = PteFlags(1 << 63);

    /// Union of two flag sets.
    #[inline]
    pub const fn union(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 | other.0)
    }

    /// Whether all bits of `other` are set in `self`.
    #[inline]
    pub const fn contains(self, other: PteFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

impl core::ops::BitOr for PteFlags {
    type Output = PteFlags;
    #[inline]
    fn bitor(self, rhs: PteFlags) -> PteFlags {
        self.union(rhs)
    }
}

/// Mask of the physical-address bits in a PTE (bits 12..=51).
const ADDR_MASK: u64 = 0x000f_ffff_ffff_f000;
/// Mask of all modeled flag bits.
const FLAG_MASK: u64 = !ADDR_MASK;

/// A raw 64-bit page-table entry.
///
/// # Examples
///
/// ```
/// use dmt_pgtable::pte::{Pte, PteFlags};
/// use dmt_mem::Pfn;
/// let pte = Pte::leaf(Pfn(0x1234), PteFlags::WRITABLE | PteFlags::USER);
/// assert!(pte.present());
/// assert_eq!(pte.pfn(), Pfn(0x1234));
/// assert!(pte.flags().contains(PteFlags::WRITABLE));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Pte(pub u64);

impl Pte {
    /// The all-zero (non-present) entry.
    pub const EMPTY: Pte = Pte(0);

    /// A leaf entry mapping a page frame (present is implied).
    #[inline]
    pub const fn leaf(pfn: Pfn, flags: PteFlags) -> Pte {
        Pte((pfn.0 << 12) & ADDR_MASK | flags.0 | PteFlags::PRESENT.0)
    }

    /// A non-leaf entry pointing at a next-level table page.
    #[inline]
    pub const fn table(table_pfn: Pfn) -> Pte {
        Pte((table_pfn.0 << 12) & ADDR_MASK
            | PteFlags::PRESENT.0
            | PteFlags::WRITABLE.0
            | PteFlags::USER.0)
    }

    /// A huge-page leaf (sets the PS bit).
    #[inline]
    pub const fn huge_leaf(pfn: Pfn, flags: PteFlags) -> Pte {
        Pte(Pte::leaf(pfn, flags).0 | PteFlags::HUGE.0)
    }

    /// Raw bits.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Whether the entry is present.
    #[inline]
    pub const fn present(self) -> bool {
        self.0 & PteFlags::PRESENT.0 != 0
    }

    /// Whether the PS (huge) bit is set.
    #[inline]
    pub const fn huge(self) -> bool {
        self.0 & PteFlags::HUGE.0 != 0
    }

    /// Whether this entry terminates the walk at the given level
    /// (L1 entries are always leaves; L2/L3 entries are leaves when PS is
    /// set).
    #[inline]
    pub const fn is_leaf_at(self, level: u8) -> bool {
        level == 1 || self.huge()
    }

    /// The frame number the entry points at (page frame or table page).
    #[inline]
    pub const fn pfn(self) -> Pfn {
        Pfn((self.0 & ADDR_MASK) >> 12)
    }

    /// The physical address the entry points at.
    #[inline]
    pub const fn phys_addr(self) -> PhysAddr {
        PhysAddr(self.0 & ADDR_MASK)
    }

    /// The flag bits.
    #[inline]
    pub const fn flags(self) -> PteFlags {
        PteFlags(self.0 & FLAG_MASK)
    }

    /// Copy with the accessed bit set (hardware behaviour on a walk).
    #[inline]
    pub const fn with_accessed(self) -> Pte {
        Pte(self.0 | PteFlags::ACCESSED.0)
    }

    /// Copy with the dirty bit set (hardware behaviour on a write).
    #[inline]
    pub const fn with_dirty(self) -> Pte {
        Pte(self.0 | PteFlags::DIRTY.0)
    }
}

impl fmt::Debug for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.present() {
            return write!(f, "Pte(not-present, raw={:#x})", self.0);
        }
        write!(
            f,
            "Pte(pfn={:#x}{}{}{}{})",
            self.pfn().0,
            if self.huge() { ", huge" } else { "" },
            if self.flags().contains(PteFlags::WRITABLE) { ", w" } else { "" },
            if self.flags().contains(PteFlags::ACCESSED) { ", a" } else { "" },
            if self.flags().contains(PteFlags::DIRTY) { ", d" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_not_present() {
        assert!(!Pte::EMPTY.present());
        assert_eq!(Pte::EMPTY.raw(), 0);
    }

    #[test]
    fn leaf_roundtrips_pfn_and_flags() {
        let pte = Pte::leaf(Pfn(0xabcde), PteFlags::WRITABLE | PteFlags::NX);
        assert!(pte.present());
        assert_eq!(pte.pfn(), Pfn(0xabcde));
        assert_eq!(pte.phys_addr(), PhysAddr(0xabcde << 12));
        assert!(pte.flags().contains(PteFlags::WRITABLE));
        assert!(pte.flags().contains(PteFlags::NX));
        assert!(!pte.flags().contains(PteFlags::DIRTY));
    }

    #[test]
    fn huge_leaf_terminates_at_l2_l3() {
        let pte = Pte::huge_leaf(Pfn(0x200), PteFlags::default());
        assert!(pte.huge());
        assert!(pte.is_leaf_at(2));
        assert!(pte.is_leaf_at(3));
        let table = Pte::table(Pfn(0x300));
        assert!(!table.is_leaf_at(2));
        assert!(table.is_leaf_at(1));
    }

    #[test]
    fn accessed_dirty_bits() {
        let pte = Pte::leaf(Pfn(1), PteFlags::default());
        let pte = pte.with_accessed();
        assert!(pte.flags().contains(PteFlags::ACCESSED));
        assert!(!pte.flags().contains(PteFlags::DIRTY));
        let pte = pte.with_dirty();
        assert!(pte.flags().contains(PteFlags::DIRTY));
        // PFN is unaffected by flag updates.
        assert_eq!(pte.pfn(), Pfn(1));
    }

    #[test]
    fn address_mask_drops_high_and_low_bits() {
        // PFNs above bit 51-12 are truncated per the architectural mask.
        let pte = Pte::table(Pfn(u64::MAX >> 12));
        assert_eq!(pte.phys_addr().0 & !0x000f_ffff_ffff_f000, 0);
    }

    #[test]
    fn debug_formats_nonempty() {
        assert!(!format!("{:?}", Pte::EMPTY).is_empty());
        assert!(format!("{:?}", Pte::leaf(Pfn(3), PteFlags::WRITABLE)).contains("pfn"));
    }
}
