//! The two-dimensional (nested) page-table walk of Figure 2.
//!
//! A guest page table translates gVA→gPA but is itself stored in guest
//! physical memory, so fetching each guest entry first requires a host
//! walk (gPA→hPA) through the host page table. A cold 2D walk over two
//! 4-level trees therefore performs up to 24 sequential PTE fetches:
//! four groups of (4 host + 1 guest) for the guest levels, plus a final
//! 4-step host walk of the data page's gPA.
//!
//! Warm walks are shortened by two structures, both modeled here:
//! * the **nested PWC** accelerates each host sub-walk (keyed by gPA);
//! * the **guest PWC** caches, per gVA prefix, the *host-physical* base of
//!   the next guest table — a hit skips entire (host walk + guest fetch)
//!   groups, which is how real nested-paging MMU caches behave.

use crate::pte::Pte;
use crate::radix::RadixPageTable;
use crate::walk::{walk_dimension, WalkDim, WalkOutcome, WalkStep};
use crate::PtError;
use dmt_cache::hierarchy::MemoryHierarchy;
use dmt_cache::pwc::PageWalkCache;
use dmt_mem::addr::{PAGE_SIZE, PTE_SIZE};
use dmt_mem::{MemoryOps, PageSize, PhysAddr, VirtAddr};

/// MMU caches used by a 2D walk.
#[derive(Debug, Default)]
pub struct NestedCaches {
    /// Guest PWC: gVA prefix → host-physical base of next guest table.
    pub guest_pwc: Option<PageWalkCache>,
    /// Nested PWC: accelerates host sub-walks, keyed by gPA.
    pub nested_pwc: Option<PageWalkCache>,
}

impl NestedCaches {
    /// Both PWCs at Table 3's geometry.
    pub fn xeon_gold_6138() -> Self {
        NestedCaches {
            guest_pwc: Some(PageWalkCache::default()),
            nested_pwc: Some(PageWalkCache::default()),
        }
    }

    /// No MMU caches (cold-walk analysis).
    pub fn none() -> Self {
        NestedCaches::default()
    }
}

/// Outcome of a 2D walk.
#[derive(Debug, Clone)]
pub struct NestedWalkOutcome {
    /// Final host-physical address of the data.
    pub pa: PhysAddr,
    /// Page size of the guest mapping.
    pub guest_size: PageSize,
    /// Total cycles including PWC lookups.
    pub cycles: u64,
    /// Every PTE fetch in walk order (guest and host interleaved exactly
    /// as in Figure 2).
    pub steps: Vec<WalkStep>,
}

impl NestedWalkOutcome {
    /// Number of sequential memory references.
    pub fn refs(&self) -> u64 {
        self.steps.len() as u64
    }
}

/// Perform a hardware 2D page walk translating `gva` to a host-physical
/// address.
///
/// `gpt` maps gVA→gPA and lives in guest physical memory; `hpt` maps
/// gPA→hPA and lives in host physical memory; `pm` is host physical
/// memory.
///
/// # Errors
///
/// Returns [`PtError::NotMapped`] if either dimension hits a non-present
/// entry.
pub fn nested_walk<M: MemoryOps>(
    gpt: &RadixPageTable,
    hpt: &RadixPageTable,
    pm: &mut M,
    gva: VirtAddr,
    hier: &mut MemoryHierarchy,
    caches: &mut NestedCaches,
) -> Result<NestedWalkOutcome, PtError> {
    let mut cycles = 0u64;
    let mut steps: Vec<WalkStep> = Vec::with_capacity(24);

    let mut glevel = gpt.levels();
    // gPA of the current guest table (valid when table_hpa is None).
    let mut gtable_gpa = PhysAddr::from_pfn(gpt.root());
    // hPA of the current guest table, when known (gPWC hit or contiguity
    // within the 4 KiB table page).
    let mut table_hpa: Option<PhysAddr> = None;

    if let Some(gpwc) = caches.guest_pwc.as_mut() {
        cycles += gpwc.latency();
        if let Some((hit_level, next_table_hpa)) = gpwc.lookup_deepest(gva) {
            glevel = hit_level - 1;
            table_hpa = Some(next_table_hpa);
        }
    }

    // Guest dimension: one (host walk + guest fetch) group per level.
    let data_gpa = loop {
        let entry_hpa = match table_hpa {
            Some(base) => base + gva.level_index(glevel) * PTE_SIZE,
            None => {
                let entry_gpa = gtable_gpa + gva.level_index(glevel) * PTE_SIZE;
                let host = walk_dimension(
                    hpt,
                    pm,
                    VirtAddr(entry_gpa.raw()),
                    WalkDim::Host,
                    hier,
                    caches.nested_pwc.as_mut(),
                )?;
                cycles += host.cycles;
                steps.extend(host.steps);
                host.pa
            }
        };
        // Fill the guest PWC: we now know the hPA of this level's table.
        if let Some(gpwc) = caches.guest_pwc.as_mut() {
            if (2..=4).contains(&(glevel + 1)) && glevel < gpt.levels() {
                let tbl_base = PhysAddr(entry_hpa.raw() & !(PAGE_SIZE - 1));
                gpwc.fill(gva, glevel + 1, tbl_base);
            }
        }
        // Fetch the guest entry itself.
        let (_, cyc) = hier.access(entry_hpa.raw());
        cycles += cyc;
        let gpte = Pte(pm.read_word(entry_hpa));
        steps.push(WalkStep {
            dim: WalkDim::Guest,
            level: glevel,
            pte_pa: entry_hpa,
            cycles: cyc,
        });
        if !gpte.present() {
            return Err(PtError::NotMapped { va: gva.raw() });
        }
        pm.write_word(entry_hpa, gpte.with_accessed().raw());
        if gpte.is_leaf_at(glevel) {
            let size = match glevel {
                1 => PageSize::Size4K,
                2 => PageSize::Size2M,
                3 => PageSize::Size1G,
                _ => return Err(PtError::NotMapped { va: gva.raw() }),
            };
            break (PhysAddr(gpte.phys_addr().raw() + gva.offset_in(size)), size);
        }
        gtable_gpa = gpte.phys_addr();
        table_hpa = None;
        glevel -= 1;
    };
    let (data_gpa, guest_size) = data_gpa;

    // Final host walk: data gPA → hPA (steps 21–24 of Figure 2).
    let host: WalkOutcome = walk_dimension(
        hpt,
        pm,
        VirtAddr(data_gpa.raw()),
        WalkDim::Host,
        hier,
        caches.nested_pwc.as_mut(),
    )?;
    cycles += host.cycles;
    let pa = host.pa;
    steps.extend(host.steps);

    Ok(NestedWalkOutcome {
        pa,
        guest_size,
        cycles,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pte::PteFlags;
    use crate::walk::WalkDim;
    use dmt_mem::buddy::FrameKind;
    use dmt_mem::PhysMemory;

    /// Build a guest in host memory with a linear gPA→hPA offset mapping.
    ///
    /// Guest physical memory `[0, guest_bytes)` maps to host physical
    /// `[offset, offset + guest_bytes)` through real hPT entries, so the
    /// 2D walker genuinely walks both trees. Guest tables are written
    /// directly at their linear host locations.
    struct Harness {
        pm: PhysMemory,
        gpt: RadixPageTable,
        hpt: RadixPageTable,
        offset: u64,
    }

    /// A guest-physical view that redirects through the linear offset.
    struct GuestView<'a> {
        pm: &'a mut PhysMemory,
        offset: u64,
        /// Simple bump allocator of guest frames.
        next_gframe: &'a mut u64,
    }

    impl dmt_mem::MemoryOps for GuestView<'_> {
        fn read_word(&self, addr: PhysAddr) -> u64 {
            self.pm.read_word(PhysAddr(addr.raw() + self.offset))
        }
        fn write_word(&mut self, addr: PhysAddr, value: u64) {
            self.pm.write_word(PhysAddr(addr.raw() + self.offset), value);
        }
        fn alloc_zeroed_frame(&mut self, _kind: FrameKind) -> dmt_mem::Result<dmt_mem::Pfn> {
            let g = *self.next_gframe;
            *self.next_gframe += 1;
            Ok(dmt_mem::Pfn(g))
        }
        fn free_frame(&mut self, _pfn: dmt_mem::Pfn) -> dmt_mem::Result<()> {
            Ok(())
        }
        fn copy_frame(&mut self, src: dmt_mem::Pfn, dst: dmt_mem::Pfn) {
            let s = dmt_mem::Pfn(src.0 + (self.offset >> 12));
            let d = dmt_mem::Pfn(dst.0 + (self.offset >> 12));
            self.pm.copy_frame(s, d);
        }
    }

    fn build(guest_size: PageSize) -> (Harness, VirtAddr) {
        build_levels(guest_size, 4)
    }

    fn build_levels(guest_size: PageSize, levels: u8) -> (Harness, VirtAddr) {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut hpt = RadixPageTable::new(&mut pm, levels).unwrap();
        // Reserve a 16 MiB guest-physical region at host offset.
        let guest_frames = 4096u64;
        let base = pm.alloc_contig(guest_frames, FrameKind::Data).unwrap();
        let offset = base.0 << 12;
        // Host maps gPA x -> hPA x+offset with 4 KiB pages.
        for g in 0..guest_frames {
            hpt.map(
                &mut pm,
                VirtAddr(g << 12),
                PhysAddr((g << 12) + offset),
                PageSize::Size4K,
                PteFlags::WRITABLE,
            )
            .unwrap();
        }
        // Build the guest table through the guest view.
        let mut next_gframe = 16u64; // leave low gframes for data
        let gpt = {
            let mut view = GuestView {
                pm: &mut pm,
                offset,
                next_gframe: &mut next_gframe,
            };
            let mut gpt = RadixPageTable::new(&mut view, levels).unwrap();
            let gva = VirtAddr(0x7f00_0020_0000);
            let gpa = PhysAddr(0x20_0000); // guest frame 512
            gpt.map(&mut view, gva, gpa, guest_size, PteFlags::WRITABLE)
                .unwrap();
            gpt
        };
        (
            Harness {
                pm,
                gpt,
                hpt,
                offset,
            },
            VirtAddr(0x7f00_0020_0000),
        )
    }

    #[test]
    fn cold_2d_walk_takes_24_references() {
        let (mut h, gva) = build(PageSize::Size4K);
        let mut hier = MemoryHierarchy::default();
        let mut caches = NestedCaches::none();
        let out = nested_walk(&h.gpt, &h.hpt, &mut h.pm, gva, &mut hier, &mut caches).unwrap();
        assert_eq!(out.refs(), 24, "Figure 2: 4 x (4 host + 1 guest) + 4");
        // Figure 2's ordering: steps 1-4 host, 5 guest, 6-9 host, 10 guest...
        let dims: Vec<WalkDim> = out.steps.iter().map(|s| s.dim).collect();
        for group in 0..4 {
            for i in 0..4 {
                assert_eq!(dims[group * 5 + i], WalkDim::Host);
            }
            assert_eq!(dims[group * 5 + 4], WalkDim::Guest);
        }
        for d in &dims[20..24] {
            assert_eq!(*d, WalkDim::Host);
        }
        // The translation is correct: gVA -> gPA 0x20_0000 -> hPA +offset.
        assert_eq!(out.pa, PhysAddr(0x20_0000 + h.offset));
        assert_eq!(out.guest_size, PageSize::Size4K);
    }

    #[test]
    fn guest_huge_page_shortens_guest_dimension() {
        let (mut h, gva) = build(PageSize::Size2M);
        let mut hier = MemoryHierarchy::default();
        let mut caches = NestedCaches::none();
        let out = nested_walk(&h.gpt, &h.hpt, &mut h.pm, gva, &mut hier, &mut caches).unwrap();
        // 3 guest groups (gL4..gL2) x 5 + final host walk of 4 = 19.
        assert_eq!(out.refs(), 19);
        assert_eq!(out.guest_size, PageSize::Size2M);
    }

    #[test]
    fn warm_pwcs_collapse_the_walk() {
        let (mut h, gva) = build(PageSize::Size4K);
        let mut hier = MemoryHierarchy::default();
        let mut caches = NestedCaches::xeon_gold_6138();
        let cold = nested_walk(&h.gpt, &h.hpt, &mut h.pm, gva, &mut hier, &mut caches).unwrap();
        // Even the first walk is below 24: the nested PWC warms up across
        // the four host sub-walks because guest tables share gPA prefixes.
        assert!(cold.refs() > 8 && cold.refs() <= 24, "cold refs = {}", cold.refs());
        let warm = nested_walk(&h.gpt, &h.hpt, &mut h.pm, gva, &mut hier, &mut caches).unwrap();
        // gPWC hit at gL2 leaves: 1 guest fetch (gL1, no host walk thanks
        // to table contiguity) + nested-PWC-shortened final host walk.
        assert!(warm.refs() <= 3, "warm refs = {}", warm.refs());
        assert!(warm.cycles < cold.cycles / 3);
        assert_eq!(warm.pa, cold.pa);
    }

    #[test]
    fn five_level_2d_walk_takes_35_references() {
        // §1/§2.1.1: with 5-level tables a nested translation takes up to
        // 35 sequential accesses: 5 guest groups x (5 host + 1 guest) + 5.
        let (mut h, gva) = build_levels(PageSize::Size4K, 5);
        let mut hier = MemoryHierarchy::default();
        let mut caches = NestedCaches::none();
        let out = nested_walk(&h.gpt, &h.hpt, &mut h.pm, gva, &mut hier, &mut caches).unwrap();
        assert_eq!(out.refs(), 35);
    }

    #[test]
    fn unmapped_guest_address_errors() {
        let (mut h, _) = build(PageSize::Size4K);
        let mut hier = MemoryHierarchy::default();
        let mut caches = NestedCaches::none();
        assert!(matches!(
            nested_walk(
                &h.gpt,
                &h.hpt,
                &mut h.pm,
                VirtAddr(0x1000),
                &mut hier,
                &mut caches
            ),
            Err(PtError::NotMapped { .. })
        ));
    }

    #[test]
    fn unmapped_gpa_in_host_errors() {
        let (mut h, gva) = build(PageSize::Size4K);
        // Map a second guest page whose data gPA exceeds host's mapping.
        {
            let mut next = 100u64;
            let mut view = GuestView {
                pm: &mut h.pm,
                offset: h.offset,
                next_gframe: &mut next,
            };
            let mut gpt = h.gpt.clone();
            gpt.map(
                &mut view,
                VirtAddr(gva.raw() + 0x1000),
                PhysAddr(1 << 30), // outside host's 16 MiB guest region
                PageSize::Size4K,
                PteFlags::default(),
            )
            .unwrap();
            h.gpt = gpt;
        }
        let mut hier = MemoryHierarchy::default();
        let mut caches = NestedCaches::none();
        assert!(nested_walk(
            &h.gpt,
            &h.hpt,
            &mut h.pm,
            VirtAddr(gva.raw() + 0x1000),
            &mut hier,
            &mut caches
        )
        .is_err());
    }
}
