//! Shadow page tables (§2.1.2/§2.1.3).
//!
//! A shadow page table (sPT) combines the guest page table (gVA→gPA) and
//! the host mapping (gPA→hPA) into one table mapping gVA→hPA directly, so
//! a translation costs only a *native* walk. The price is software
//! synchronization: every guest page-table update must be intercepted and
//! reflected into the sPT, causing a VM exit. This module maintains the
//! sPT and counts sync events; the VM-exit cycle cost model lives in
//! `dmt-virt`, which also uses these counters to estimate nested
//! virtualization's shadow overhead (§5: scaled by the VM-exit ratio).

use crate::pte::PteFlags;
use crate::radix::RadixPageTable;
use crate::PtError;
use dmt_mem::{MemoryOps, PageSize, PhysAddr, VirtAddr};

/// A shadow page table plus synchronization accounting.
#[derive(Debug, Clone)]
pub struct ShadowPageTable {
    spt: RadixPageTable,
    sync_events: u64,
}

impl ShadowPageTable {
    /// Create an empty shadow table in host physical memory.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure.
    pub fn new<M: MemoryOps>(pm: &mut M, levels: u8) -> Result<Self, PtError> {
        Ok(ShadowPageTable {
            spt: RadixPageTable::new(pm, levels)?,
            sync_events: 0,
        })
    }

    /// The underlying table (walked natively by the MMU).
    pub fn table(&self) -> &RadixPageTable {
        &self.spt
    }

    /// Reflect a guest mapping `gva -> hpa` into the shadow table.
    ///
    /// Each call models one intercepted guest page-table update (one VM
    /// exit); the event counter feeds the §5 shadow-overhead estimate.
    ///
    /// # Errors
    ///
    /// Propagates mapping errors.
    pub fn sync_mapping<M: MemoryOps>(
        &mut self,
        pm: &mut M,
        gva: VirtAddr,
        hpa: PhysAddr,
        size: PageSize,
        flags: PteFlags,
    ) -> Result<(), PtError> {
        self.sync_events += 1;
        match self.spt.map(pm, gva, hpa, size, flags) {
            Ok(()) => Ok(()),
            Err(PtError::AlreadyMapped { .. }) => {
                // Guest remapped a page: invalidate then re-map.
                self.spt.unmap(pm, gva, size)?;
                self.spt.map(pm, gva, hpa, size, flags)
            }
            Err(e) => Err(e),
        }
    }

    /// Reflect a guest unmap into the shadow table.
    ///
    /// # Errors
    ///
    /// Propagates unmapping errors.
    pub fn sync_unmap<M: MemoryOps>(
        &mut self,
        pm: &mut M,
        gva: VirtAddr,
        size: PageSize,
    ) -> Result<(), PtError> {
        self.sync_events += 1;
        self.spt.unmap(pm, gva, size)
    }

    /// Number of guest page-table updates intercepted so far (each one is
    /// a VM exit in the cost model).
    pub fn sync_events(&self) -> u64 {
        self.sync_events
    }

    /// Reset the sync counter (e.g. after warmup).
    pub fn reset_sync_events(&mut self) {
        self.sync_events = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::{walk_dimension, WalkDim};
    use dmt_cache::hierarchy::MemoryHierarchy;
    use dmt_mem::PhysMemory;

    #[test]
    fn shadow_walk_is_native_length() {
        let mut pm = PhysMemory::new_bytes(16 << 20);
        let mut spt = ShadowPageTable::new(&mut pm, 4).unwrap();
        let gva = VirtAddr(0x7f00_0000_0000);
        spt.sync_mapping(&mut pm, gva, PhysAddr(0x8000), PageSize::Size4K, PteFlags::WRITABLE)
            .unwrap();
        let mut hier = MemoryHierarchy::default();
        let out =
            walk_dimension(spt.table(), &mut pm, gva, WalkDim::Native, &mut hier, None).unwrap();
        assert_eq!(out.refs(), 4, "shadow paging walks like native");
        assert_eq!(out.pa, PhysAddr(0x8000));
    }

    #[test]
    fn every_sync_is_counted() {
        let mut pm = PhysMemory::new_bytes(16 << 20);
        let mut spt = ShadowPageTable::new(&mut pm, 4).unwrap();
        for i in 0..10u64 {
            spt.sync_mapping(
                &mut pm,
                VirtAddr(i << 12),
                PhysAddr((100 + i) << 12),
                PageSize::Size4K,
                PteFlags::default(),
            )
            .unwrap();
        }
        spt.sync_unmap(&mut pm, VirtAddr(0), PageSize::Size4K).unwrap();
        assert_eq!(spt.sync_events(), 11);
        spt.reset_sync_events();
        assert_eq!(spt.sync_events(), 0);
    }

    #[test]
    fn remap_replaces_translation() {
        let mut pm = PhysMemory::new_bytes(16 << 20);
        let mut spt = ShadowPageTable::new(&mut pm, 4).unwrap();
        let gva = VirtAddr(0x1000);
        spt.sync_mapping(&mut pm, gva, PhysAddr(0x2000), PageSize::Size4K, PteFlags::default())
            .unwrap();
        spt.sync_mapping(&mut pm, gva, PhysAddr(0x3000), PageSize::Size4K, PteFlags::default())
            .unwrap();
        assert_eq!(
            spt.table().translate(&pm, gva),
            Some((PhysAddr(0x3000), PageSize::Size4K))
        );
    }
}
