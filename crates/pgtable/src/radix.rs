//! Radix (multi-level) page tables living in simulated physical memory.
//!
//! [`RadixPageTable`] is the software view used by the OS layer: it maps,
//! unmaps and translates without charging cycles. The hardware walkers
//! ([`crate::walk`], [`crate::nested`]) re-walk the same physical entries
//! through the cache hierarchy to measure latency.
//!
//! The table supports 4- and 5-level formats and 4 KiB / 2 MiB / 1 GiB
//! leaves. For DMT, the crucial extra capability is
//! [`install_table`](RadixPageTable::install_table): the OS can place a
//! *specific* physical frame as a table page (a TEA page), so the
//! last-level PTEs physically live inside the contiguous TEA while the
//! ordinary x86 walker still finds them through the tree — DMT keeps a
//! single copy of every PTE (paper §3).

use crate::pte::{Pte, PteFlags};
use crate::PtError;
use dmt_mem::addr::{ENTRIES_PER_TABLE, PTE_SIZE};
use dmt_mem::buddy::FrameKind;
use dmt_mem::{MemoryOps, PageSize, Pfn, PhysAddr, VirtAddr};

/// A radix page table rooted at a physical frame.
///
/// # Examples
///
/// ```
/// use dmt_pgtable::radix::RadixPageTable;
/// use dmt_pgtable::pte::PteFlags;
/// use dmt_mem::{PhysMemory, PageSize, PhysAddr, VirtAddr};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut pm = PhysMemory::new_bytes(16 << 20);
/// let mut pt = RadixPageTable::new(&mut pm, 4)?;
/// pt.map(&mut pm, VirtAddr(0x7000_0000), PhysAddr(0x1000), PageSize::Size4K, PteFlags::WRITABLE)?;
/// let (pa, size) = pt.translate(&pm, VirtAddr(0x7000_0123)).unwrap();
/// assert_eq!(pa, PhysAddr(0x1123));
/// assert_eq!(size, PageSize::Size4K);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RadixPageTable {
    root: Pfn,
    levels: u8,
}

impl RadixPageTable {
    /// Allocate an empty page table with the given number of levels (4 or
    /// 5).
    ///
    /// # Errors
    ///
    /// Propagates allocation failure.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is not 4 or 5.
    pub fn new<M: MemoryOps>(pm: &mut M, levels: u8) -> Result<Self, PtError> {
        assert!(levels == 4 || levels == 5, "x86 trees have 4 or 5 levels");
        let root = pm.alloc_zeroed_frame(FrameKind::PageTable)?;
        Ok(RadixPageTable { root, levels })
    }

    /// Adopt an existing (already zeroed) frame as the root — used when
    /// the root must come from a specific allocator, e.g. a guest's
    /// physical space.
    pub fn from_root(root: Pfn, levels: u8) -> Self {
        assert!(levels == 4 || levels == 5, "x86 trees have 4 or 5 levels");
        RadixPageTable { root, levels }
    }

    /// The root table frame (the CR3 analog).
    #[inline]
    pub fn root(&self) -> Pfn {
        self.root
    }

    /// Number of levels (4 or 5).
    #[inline]
    pub fn levels(&self) -> u8 {
        self.levels
    }

    /// Physical address of the entry for `va` at `level`, assuming the
    /// walk can reach it (all higher-level tables present and not huge).
    ///
    /// Performs a costless software walk from the root.
    pub fn entry_pa<M: MemoryOps>(&self, pm: &M, va: VirtAddr, level: u8) -> Option<PhysAddr> {
        let mut table = self.root;
        let mut l = self.levels;
        loop {
            let pa = PhysAddr::from_pfn(table) + va.level_index(l) * PTE_SIZE;
            if l == level {
                return Some(pa);
            }
            let pte = Pte(pm.read_word(pa));
            if !pte.present() || pte.is_leaf_at(l) {
                return None;
            }
            table = pte.pfn();
            l -= 1;
        }
    }

    /// Read the entry for `va` at `level` (software walk, no cycles).
    pub fn entry<M: MemoryOps>(&self, pm: &M, va: VirtAddr, level: u8) -> Option<Pte> {
        self.entry_pa(pm, va, level).map(|pa| Pte(pm.read_word(pa)))
    }

    /// Map `va` to `pa` with the given page size, allocating intermediate
    /// tables as needed.
    ///
    /// # Errors
    ///
    /// Returns [`PtError::Unaligned`] if `va` or `pa` is not size-aligned,
    /// [`PtError::AlreadyMapped`] if a present leaf exists, or a memory
    /// error if table allocation fails.
    pub fn map<M: MemoryOps>(
        &mut self,
        pm: &mut M,
        va: VirtAddr,
        pa: PhysAddr,
        size: PageSize,
        flags: PteFlags,
    ) -> Result<(), PtError> {
        if !va.is_aligned(size) || !pa.is_aligned(size) {
            return Err(PtError::Unaligned { addr: va.raw() });
        }
        let leaf_level = size.leaf_level();
        let slot = self.walk_to_slot(pm, va, leaf_level, true)?;
        let existing = Pte(pm.read_word(slot));
        if existing.present() {
            return Err(PtError::AlreadyMapped { va: va.raw() });
        }
        let pte = if leaf_level == 1 {
            Pte::leaf(pa.pfn(), flags)
        } else {
            Pte::huge_leaf(pa.pfn(), flags)
        };
        pm.write_word(slot, pte.raw());
        Ok(())
    }

    /// Remove the mapping of `va` at the given page size.
    ///
    /// # Errors
    ///
    /// Returns [`PtError::NotMapped`] if no present leaf of that size
    /// exists.
    pub fn unmap<M: MemoryOps>(&mut self, pm: &mut M, va: VirtAddr, size: PageSize) -> Result<(), PtError> {
        let leaf_level = size.leaf_level();
        let slot = self
            .entry_pa(pm, va, leaf_level)
            .ok_or(PtError::NotMapped { va: va.raw() })?;
        let pte = Pte(pm.read_word(slot));
        if !pte.present() || !pte.is_leaf_at(leaf_level) {
            return Err(PtError::NotMapped { va: va.raw() });
        }
        pm.write_word(slot, Pte::EMPTY.raw());
        Ok(())
    }

    /// Software-translate `va` to a physical address and its mapping size.
    pub fn translate<M: MemoryOps>(&self, pm: &M, va: VirtAddr) -> Option<(PhysAddr, PageSize)> {
        let mut table = self.root;
        let mut l = self.levels;
        loop {
            let pa = PhysAddr::from_pfn(table) + va.level_index(l) * PTE_SIZE;
            let pte = Pte(pm.read_word(pa));
            if !pte.present() {
                return None;
            }
            if pte.is_leaf_at(l) {
                let size = match l {
                    1 => PageSize::Size4K,
                    2 => PageSize::Size2M,
                    3 => PageSize::Size1G,
                    _ => return None, // PS at L4/L5 is not architectural
                };
                let base = pte.phys_addr();
                return Some((PhysAddr(base.raw() + va.offset_in(size)), size));
            }
            table = pte.pfn();
            l -= 1;
        }
    }

    /// Software-translate `va`, also returning the leaf PTE's flags —
    /// the reference walk used by the differential oracle, which checks
    /// permission bits as well as the physical address.
    pub fn translate_entry<M: MemoryOps>(
        &self,
        pm: &M,
        va: VirtAddr,
    ) -> Option<(PhysAddr, PageSize, PteFlags)> {
        let mut table = self.root;
        let mut l = self.levels;
        loop {
            let pa = PhysAddr::from_pfn(table) + va.level_index(l) * PTE_SIZE;
            let pte = Pte(pm.read_word(pa));
            if !pte.present() {
                return None;
            }
            if pte.is_leaf_at(l) {
                let size = match l {
                    1 => PageSize::Size4K,
                    2 => PageSize::Size2M,
                    3 => PageSize::Size1G,
                    _ => return None, // PS at L4/L5 is not architectural
                };
                let base = pte.phys_addr();
                return Some((PhysAddr(base.raw() + va.offset_in(size)), size, pte.flags()));
            }
            table = pte.pfn();
            l -= 1;
        }
    }

    /// Install `table_pfn` as the table page serving `va` at `level`
    /// (i.e. the entry at `level + 1` will point to it).
    ///
    /// If a table already exists there, its 512 entries are copied into
    /// the new page and the old frame is freed — this is exactly the PTE
    /// migration DMT-Linux performs when TEA pages take over from
    /// buddy-scattered page-table pages (§4.3).
    ///
    /// # Errors
    ///
    /// Returns [`PtError::HugeConflict`] if the covering entry is a
    /// huge-page leaf, or a memory error if intermediate allocation fails.
    pub fn install_table<M: MemoryOps>(
        &mut self,
        pm: &mut M,
        va: VirtAddr,
        level: u8,
        table_pfn: Pfn,
    ) -> Result<(), PtError> {
        assert!(
            level >= 1 && level < self.levels,
            "cannot install a table at the root level"
        );
        let slot = self.walk_to_slot(pm, va, level + 1, true)?;
        let existing = Pte(pm.read_word(slot));
        if existing.present() {
            if existing.huge() {
                return Err(PtError::HugeConflict { va: va.raw() });
            }
            let old = existing.pfn();
            if old == table_pfn {
                return Ok(());
            }
            pm.copy_frame(old, table_pfn);
            pm.write_word(slot, Pte::table(table_pfn).raw());
            pm.free_frame(old)?;
        } else {
            pm.write_word(slot, Pte::table(table_pfn).raw());
        }
        Ok(())
    }

    /// The frame of the table page serving `va` at `level`, if present.
    pub fn table_frame<M: MemoryOps>(&self, pm: &M, va: VirtAddr, level: u8) -> Option<Pfn> {
        if level == self.levels {
            return Some(self.root);
        }
        let pte = self.entry(pm, va, level + 1)?;
        if pte.present() && !pte.huge() {
            Some(pte.pfn())
        } else {
            None
        }
    }

    /// Point the covering entry of `va` at `level` away from its current
    /// table page to `new_pfn` **without copying** (caller already placed
    /// content there). Used by gradual TEA migration.
    ///
    /// # Errors
    ///
    /// Returns [`PtError::NotMapped`] if no table exists at that position.
    pub fn retarget_table<M: MemoryOps>(
        &mut self,
        pm: &mut M,
        va: VirtAddr,
        level: u8,
        new_pfn: Pfn,
    ) -> Result<Pfn, PtError> {
        let slot = self
            .entry_pa(pm, va, level + 1)
            .ok_or(PtError::NotMapped { va: va.raw() })?;
        let existing = Pte(pm.read_word(slot));
        if !existing.present() || existing.huge() {
            return Err(PtError::NotMapped { va: va.raw() });
        }
        let old = existing.pfn();
        pm.write_word(slot, Pte::table(new_pfn).raw());
        Ok(old)
    }

    /// Count table pages reachable from the root (the page-table memory
    /// footprint used in §6.3), including the root itself.
    pub fn table_pages<M: MemoryOps>(&self, pm: &M) -> u64 {
        fn rec<M: MemoryOps>(pm: &M, table: Pfn, level: u8) -> u64 {
            let mut count = 1;
            if level == 1 {
                return count;
            }
            for i in 0..ENTRIES_PER_TABLE {
                let pte = Pte(pm.read_word(PhysAddr::from_pfn(table) + i * PTE_SIZE));
                if pte.present() && !pte.is_leaf_at(level) {
                    count += rec(pm, pte.pfn(), level - 1);
                }
            }
            count
        }
        rec(pm, self.root, self.levels)
    }

    /// Walk to the entry slot for `va` at `target_level`, optionally
    /// allocating intermediate tables.
    fn walk_to_slot<M: MemoryOps>(
        &mut self,
        pm: &mut M,
        va: VirtAddr,
        target_level: u8,
        alloc: bool,
    ) -> Result<PhysAddr, PtError> {
        let mut table = self.root;
        let mut l = self.levels;
        loop {
            let slot = PhysAddr::from_pfn(table) + va.level_index(l) * PTE_SIZE;
            if l == target_level {
                return Ok(slot);
            }
            let pte = Pte(pm.read_word(slot));
            if pte.present() {
                if pte.huge() {
                    return Err(PtError::HugeConflict { va: va.raw() });
                }
                table = pte.pfn();
            } else if alloc {
                let fresh = pm.alloc_zeroed_frame(FrameKind::PageTable)?;
                pm.write_word(slot, Pte::table(fresh).raw());
                table = fresh;
            } else {
                return Err(PtError::NotMapped { va: va.raw() });
            }
            l -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_mem::PhysMemory;

    fn setup() -> (PhysMemory, RadixPageTable) {
        let mut pm = PhysMemory::new_bytes(32 << 20);
        let pt = RadixPageTable::new(&mut pm, 4).unwrap();
        (pm, pt)
    }

    #[test]
    fn map_translate_unmap_4k() {
        let (mut pm, mut pt) = setup();
        let va = VirtAddr(0x7fff_0000_1000);
        pt.map(&mut pm, va, PhysAddr(0x5000), PageSize::Size4K, PteFlags::WRITABLE)
            .unwrap();
        assert_eq!(
            pt.translate(&pm, va + 0x42),
            Some((PhysAddr(0x5042), PageSize::Size4K))
        );
        pt.unmap(&mut pm, va, PageSize::Size4K).unwrap();
        assert_eq!(pt.translate(&pm, va), None);
    }

    #[test]
    fn map_2m_huge_page() {
        let (mut pm, mut pt) = setup();
        let va = VirtAddr(0x4000_0000);
        let pa = PhysAddr(0x80_0000);
        pt.map(&mut pm, va, pa, PageSize::Size2M, PteFlags::default())
            .unwrap();
        let (got, size) = pt.translate(&pm, va + 0x12_3456).unwrap();
        assert_eq!(size, PageSize::Size2M);
        assert_eq!(got, PhysAddr(pa.raw() + 0x12_3456));
        // The leaf lives at L2: only root + L3 + L2 tables exist.
        assert_eq!(pt.table_pages(&pm), 3);
    }

    #[test]
    fn map_1g_huge_page() {
        let (mut pm, mut pt) = setup();
        let va = VirtAddr(0x80_0000_0000);
        pt.map(&mut pm, va, PhysAddr(0x4000_0000), PageSize::Size1G, PteFlags::default())
            .unwrap();
        let (got, size) = pt.translate(&pm, va + 0xabc_def0).unwrap();
        assert_eq!(size, PageSize::Size1G);
        assert_eq!(got.raw(), 0x4000_0000 + 0xabc_def0);
        assert_eq!(pt.table_pages(&pm), 2); // root + L4->L3 table
    }

    #[test]
    fn unaligned_map_rejected() {
        let (mut pm, mut pt) = setup();
        assert!(matches!(
            pt.map(&mut pm, VirtAddr(0x123), PhysAddr(0), PageSize::Size4K, PteFlags::default()),
            Err(PtError::Unaligned { .. })
        ));
        assert!(matches!(
            pt.map(&mut pm, VirtAddr(0x1000), PhysAddr(0), PageSize::Size2M, PteFlags::default()),
            Err(PtError::AlreadyMapped { .. }) | Err(PtError::Unaligned { .. })
        ));
    }

    #[test]
    fn double_map_rejected() {
        let (mut pm, mut pt) = setup();
        let va = VirtAddr(0x1000);
        pt.map(&mut pm, va, PhysAddr(0x2000), PageSize::Size4K, PteFlags::default())
            .unwrap();
        assert!(matches!(
            pt.map(&mut pm, va, PhysAddr(0x3000), PageSize::Size4K, PteFlags::default()),
            Err(PtError::AlreadyMapped { .. })
        ));
    }

    #[test]
    fn five_level_tree_works() {
        let mut pm = PhysMemory::new_bytes(32 << 20);
        let mut pt = RadixPageTable::new(&mut pm, 5).unwrap();
        // An address above the 4-level canonical range.
        let va = VirtAddr(0x00ff_8000_0000_0000 & ((1 << 57) - 1));
        pt.map(&mut pm, va, PhysAddr(0x9000), PageSize::Size4K, PteFlags::default())
            .unwrap();
        assert_eq!(
            pt.translate(&pm, va),
            Some((PhysAddr(0x9000), PageSize::Size4K))
        );
        // 5 tables: root(L5) + L4 + L3 + L2 + L1.
        assert_eq!(pt.table_pages(&pm), 5);
    }

    #[test]
    fn install_table_places_specific_frame() {
        let (mut pm, mut pt) = setup();
        let va = VirtAddr(0x20_0000); // 2 MiB-aligned
        let tea_page = pm.alloc_contig(1, FrameKind::Tea).unwrap();
        pt.install_table(&mut pm, va, 1, tea_page).unwrap();
        assert_eq!(pt.table_frame(&pm, va, 1), Some(tea_page));
        // Mapping through the tree writes into the installed TEA page.
        pt.map(&mut pm, va, PhysAddr(0x7000), PageSize::Size4K, PteFlags::default())
            .unwrap();
        let slot = PhysAddr::from_pfn(tea_page) + va.level_index(1) * PTE_SIZE;
        assert!(Pte(pm.read_word(slot)).present());
    }

    #[test]
    fn install_table_migrates_existing_entries() {
        let (mut pm, mut pt) = setup();
        let va = VirtAddr(0x20_0000);
        pt.map(&mut pm, va, PhysAddr(0x7000), PageSize::Size4K, PteFlags::default())
            .unwrap();
        let old = pt.table_frame(&pm, va, 1).unwrap();
        let tea_page = pm.alloc_contig(1, FrameKind::Tea).unwrap();
        pt.install_table(&mut pm, va, 1, tea_page).unwrap();
        assert_ne!(pt.table_frame(&pm, va, 1).unwrap(), old);
        // The translation survived the migration.
        assert_eq!(
            pt.translate(&pm, va),
            Some((PhysAddr(0x7000), PageSize::Size4K))
        );
    }

    #[test]
    fn install_table_conflicts_with_huge_leaf() {
        let (mut pm, mut pt) = setup();
        let va = VirtAddr(0x20_0000);
        pt.map(&mut pm, va, PhysAddr(0x20_0000), PageSize::Size2M, PteFlags::default())
            .unwrap();
        let tea_page = pm.alloc_contig(1, FrameKind::Tea).unwrap();
        assert!(matches!(
            pt.install_table(&mut pm, va, 1, tea_page),
            Err(PtError::HugeConflict { .. })
        ));
    }

    #[test]
    fn retarget_table_swaps_without_copy() {
        let (mut pm, mut pt) = setup();
        let va = VirtAddr(0x20_0000);
        pt.map(&mut pm, va, PhysAddr(0x7000), PageSize::Size4K, PteFlags::default())
            .unwrap();
        let old = pt.table_frame(&pm, va, 1).unwrap();
        let fresh = pm.alloc_contig(1, FrameKind::Tea).unwrap();
        pm.copy_frame(old, fresh);
        let returned = pt.retarget_table(&mut pm, va, 1, fresh).unwrap();
        assert_eq!(returned, old);
        assert_eq!(
            pt.translate(&pm, va),
            Some((PhysAddr(0x7000), PageSize::Size4K))
        );
    }

    #[test]
    fn entry_pa_exposes_slot_addresses() {
        let (mut pm, mut pt) = setup();
        let va = VirtAddr(0x1000);
        pt.map(&mut pm, va, PhysAddr(0x2000), PageSize::Size4K, PteFlags::default())
            .unwrap();
        // Root entry slot is index 0 of the root frame for this VA.
        let root_slot = pt.entry_pa(&pm, va, 4).unwrap();
        assert_eq!(root_slot, PhysAddr::from_pfn(pt.root()) + 0);
        // The L1 slot's content translates the page.
        let l1_slot = pt.entry_pa(&pm, va, 1).unwrap();
        assert_eq!(Pte(pm.read_word(l1_slot)).phys_addr(), PhysAddr(0x2000));
    }

    #[test]
    fn translate_entry_reports_flags() {
        let (mut pm, mut pt) = setup();
        let va = VirtAddr(0x7fff_0000_1000);
        pt.map(
            &mut pm,
            va,
            PhysAddr(0x5000),
            PageSize::Size4K,
            PteFlags::WRITABLE | PteFlags::USER,
        )
        .unwrap();
        let (pa, size, flags) = pt.translate_entry(&pm, va + 0x42).unwrap();
        assert_eq!(pa, PhysAddr(0x5042));
        assert_eq!(size, PageSize::Size4K);
        assert!(flags.contains(PteFlags::PRESENT));
        assert!(flags.contains(PteFlags::WRITABLE));
        assert!(flags.contains(PteFlags::USER));
        assert_eq!(pt.translate_entry(&pm, VirtAddr(0xdead_0000)), None);
    }

    #[test]
    fn mixed_sizes_in_one_tree() {
        let (mut pm, mut pt) = setup();
        pt.map(&mut pm, VirtAddr(0x1000), PhysAddr(0x1000), PageSize::Size4K, PteFlags::default())
            .unwrap();
        pt.map(&mut pm, VirtAddr(0x20_0000), PhysAddr(0x20_0000), PageSize::Size2M, PteFlags::default())
            .unwrap();
        pt.map(
            &mut pm,
            VirtAddr(0x1_4000_0000),
            PhysAddr(0x4000_0000),
            PageSize::Size1G,
            PteFlags::default(),
        )
        .unwrap();
        assert_eq!(pt.translate(&pm, VirtAddr(0x1000)).unwrap().1, PageSize::Size4K);
        assert_eq!(pt.translate(&pm, VirtAddr(0x20_0000)).unwrap().1, PageSize::Size2M);
        assert_eq!(
            pt.translate(&pm, VirtAddr(0x1_4000_0000)).unwrap().1,
            PageSize::Size1G
        );
    }
}
