//! ASAP — Margaritov et al., MICRO'19 ("Prefetched Address Translation").
//!
//! ASAP places the last two levels of page-table entries in per-VMA
//! contiguous arrays (the same layout idea DMT's TEAs use) and, on a TLB
//! miss, computes their addresses arithmetically and *prefetches* them
//! into the cache hierarchy. The walk itself is unchanged: still 4
//! sequential references natively and up to 24 virtualized (Table 6) —
//! they just tend to hit in L2. The model here gives ASAP perfectly
//! timely prefetches (inserted before the walk starts), which is
//! generous; DMT still wins because seriality remains.

use dmt_cache::hierarchy::MemoryHierarchy;
use dmt_core::vtmap::VmaTeaMapping;
use dmt_mem::{PhysAddr, VirtAddr};

/// The offset-based prefetcher: per-VMA contiguous PTE arrays for the
/// last one or two levels. [`VmaTeaMapping`] already encodes exactly the
/// "base + linear offset" arithmetic ASAP uses, so the prefetcher is a
/// set of them per level.
#[derive(Debug, Clone, Default)]
pub struct AsapPrefetcher {
    /// L1-entry arrays (4 KiB PTEs).
    pub l1_arrays: Vec<VmaTeaMapping>,
    /// L2-entry arrays (either 2 MiB leaf PTEs or L1-table pointers).
    pub l2_arrays: Vec<VmaTeaMapping>,
}

/// Prefetch statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AsapStats {
    /// Lines injected into L2.
    pub prefetches: u64,
    /// Misses with no covering array (no prefetch issued).
    pub uncovered: u64,
}

impl AsapPrefetcher {
    /// Build from per-level arrays.
    pub fn new(l1_arrays: Vec<VmaTeaMapping>, l2_arrays: Vec<VmaTeaMapping>) -> Self {
        AsapPrefetcher {
            l1_arrays,
            l2_arrays,
        }
    }

    /// The PTE slots ASAP would compute for `va` (host-physical after
    /// applying `resolve`, which is the identity natively and the
    /// gPA→hPA software mapping in a VM).
    pub fn predicted_slots(
        &self,
        va: VirtAddr,
        resolve: impl Fn(PhysAddr) -> Option<PhysAddr>,
    ) -> Vec<PhysAddr> {
        self.l1_arrays
            .iter()
            .chain(self.l2_arrays.iter())
            .filter_map(|m| m.pte_addr(va))
            .filter_map(&resolve)
            .collect()
    }

    /// On a TLB miss for `va`: inject the predicted last-two-level PTE
    /// lines into L2 (latency-free; bandwidth effects show up as cache
    /// pollution because the inserted lines evict others).
    pub fn prefetch(
        &self,
        va: VirtAddr,
        hier: &mut MemoryHierarchy,
        resolve: impl Fn(PhysAddr) -> Option<PhysAddr>,
        stats: &mut AsapStats,
    ) {
        let slots = self.predicted_slots(va, resolve);
        if slots.is_empty() {
            stats.uncovered += 1;
            return;
        }
        for s in slots {
            hier.prefetch_into_l2(s.raw());
            stats.prefetches += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_cache::hierarchy::HitLevel;
    use dmt_mem::{PageSize, Pfn};

    fn prefetcher() -> AsapPrefetcher {
        let l1 = VmaTeaMapping::new(VirtAddr(0x4000_0000), 8 << 20, PageSize::Size4K, Pfn(100));
        let l2 = VmaTeaMapping::new(VirtAddr(0x4000_0000), 8 << 20, PageSize::Size2M, Pfn(200));
        AsapPrefetcher::new(vec![l1], vec![l2])
    }

    #[test]
    fn predicted_slots_cover_both_levels() {
        let p = prefetcher();
        let slots = p.predicted_slots(VirtAddr(0x4000_5000), Some);
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0], PhysAddr((100 << 12) + 5 * 8));
    }

    #[test]
    fn prefetched_lines_hit_in_l2() {
        let p = prefetcher();
        let mut hier = MemoryHierarchy::default();
        let mut stats = AsapStats::default();
        let va = VirtAddr(0x4000_5000);
        p.prefetch(va, &mut hier, Some, &mut stats);
        assert_eq!(stats.prefetches, 2);
        // The L1-PTE line is now an L2 hit instead of DRAM.
        let (lvl, cyc) = hier.access((100u64 << 12) + 5 * 8);
        assert_eq!(lvl, HitLevel::L2);
        assert_eq!(cyc, 14);
    }

    #[test]
    fn uncovered_addresses_are_counted() {
        let p = prefetcher();
        let mut hier = MemoryHierarchy::default();
        let mut stats = AsapStats::default();
        p.prefetch(VirtAddr(0x9000_0000), &mut hier, Some, &mut stats);
        assert_eq!(stats.uncovered, 1);
        assert_eq!(stats.prefetches, 0);
    }

    #[test]
    fn resolve_failure_skips_quietly() {
        let p = prefetcher();
        let mut hier = MemoryHierarchy::default();
        let mut stats = AsapStats::default();
        p.prefetch(VirtAddr(0x4000_5000), &mut hier, |_| None, &mut stats);
        assert_eq!(stats.prefetches, 0);
    }
}
