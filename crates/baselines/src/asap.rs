//! ASAP — Margaritov et al., MICRO'19 ("Prefetched Address Translation").
//!
//! ASAP places the last two levels of page-table entries in per-VMA
//! contiguous arrays (the same layout idea DMT's TEAs use) and, on a TLB
//! miss, computes their addresses arithmetically and *prefetches* them
//! into the cache hierarchy. The walk itself is unchanged: still 4
//! sequential references natively and up to 24 virtualized (Table 6) —
//! they just tend to hit in L2. The model here gives ASAP perfectly
//! timely prefetches (inserted before the walk starts), which is
//! generous; DMT still wins because seriality remains.

use dmt_cache::hierarchy::MemoryHierarchy;
use dmt_core::vtmap::VmaTeaMapping;
use dmt_mem::{PhysAddr, VirtAddr};

/// Overlap an ASAP prefetch with the walk: the last step's cost becomes
/// `min(measured, max(L2 latency, DRAM latency - prior steps))` — the
/// prefetched line cannot arrive faster than one DRAM round trip issued
/// at TLB-miss time (MICRO'19's timeliness constraint).
///
/// `step_cycles` is borrowed (the rigs pass a fixed-size stack buffer of
/// at most [`dmt_pgtable::walk::MAX_WALK_DEPTH`] entries), so the
/// adjustment costs no allocation on the translate hot path.
pub fn asap_adjusted_cycles(total: u64, step_cycles: &[u64], hier: &MemoryHierarchy) -> u64 {
    let Some((&last, prior)) = step_cycles.split_last() else {
        return total;
    };
    let prior_sum: u64 = prior.iter().sum();
    let l2 = hier.config().l2.latency;
    let dram = hier.config().dram_latency;
    let adjusted = last.min(l2.max(dram.saturating_sub(prior_sum)));
    total - last + adjusted
}

/// The offset-based prefetcher: per-VMA contiguous PTE arrays for the
/// last one or two levels. [`VmaTeaMapping`] already encodes exactly the
/// "base + linear offset" arithmetic ASAP uses, so the prefetcher is a
/// set of them per level.
#[derive(Debug, Clone, Default)]
pub struct AsapPrefetcher {
    /// L1-entry arrays (4 KiB PTEs).
    pub l1_arrays: Vec<VmaTeaMapping>,
    /// L2-entry arrays (either 2 MiB leaf PTEs or L1-table pointers).
    pub l2_arrays: Vec<VmaTeaMapping>,
}

/// Prefetch statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AsapStats {
    /// Lines injected into L2.
    pub prefetches: u64,
    /// Misses with no covering array (no prefetch issued).
    pub uncovered: u64,
}

impl AsapPrefetcher {
    /// Build from per-level arrays.
    pub fn new(l1_arrays: Vec<VmaTeaMapping>, l2_arrays: Vec<VmaTeaMapping>) -> Self {
        AsapPrefetcher {
            l1_arrays,
            l2_arrays,
        }
    }

    /// The PTE slots ASAP would compute for `va` (host-physical after
    /// applying `resolve`, which is the identity natively and the
    /// gPA→hPA software mapping in a VM).
    pub fn predicted_slots(
        &self,
        va: VirtAddr,
        resolve: impl Fn(PhysAddr) -> Option<PhysAddr>,
    ) -> Vec<PhysAddr> {
        self.l1_arrays
            .iter()
            .chain(self.l2_arrays.iter())
            .filter_map(|m| m.pte_addr(va))
            .filter_map(&resolve)
            .collect()
    }

    /// On a TLB miss for `va`: inject the predicted last-two-level PTE
    /// lines into L2 (latency-free; bandwidth effects show up as cache
    /// pollution because the inserted lines evict others).
    pub fn prefetch(
        &self,
        va: VirtAddr,
        hier: &mut MemoryHierarchy,
        resolve: impl Fn(PhysAddr) -> Option<PhysAddr>,
        stats: &mut AsapStats,
    ) {
        let slots = self.predicted_slots(va, resolve);
        if slots.is_empty() {
            stats.uncovered += 1;
            return;
        }
        for s in slots {
            hier.prefetch_into_l2(s.raw());
            stats.prefetches += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_cache::hierarchy::HitLevel;
    use dmt_mem::{PageSize, Pfn};

    fn prefetcher() -> AsapPrefetcher {
        let l1 = VmaTeaMapping::new(VirtAddr(0x4000_0000), 8 << 20, PageSize::Size4K, Pfn(100));
        let l2 = VmaTeaMapping::new(VirtAddr(0x4000_0000), 8 << 20, PageSize::Size2M, Pfn(200));
        AsapPrefetcher::new(vec![l1], vec![l2])
    }

    #[test]
    fn predicted_slots_cover_both_levels() {
        let p = prefetcher();
        let slots = p.predicted_slots(VirtAddr(0x4000_5000), Some);
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0], PhysAddr((100 << 12) + 5 * 8));
    }

    #[test]
    fn prefetched_lines_hit_in_l2() {
        let p = prefetcher();
        let mut hier = MemoryHierarchy::default();
        let mut stats = AsapStats::default();
        let va = VirtAddr(0x4000_5000);
        p.prefetch(va, &mut hier, Some, &mut stats);
        assert_eq!(stats.prefetches, 2);
        // The L1-PTE line is now an L2 hit instead of DRAM.
        let (lvl, cyc) = hier.access((100u64 << 12) + 5 * 8);
        assert_eq!(lvl, HitLevel::L2);
        assert_eq!(cyc, 14);
    }

    #[test]
    fn uncovered_addresses_are_counted() {
        let p = prefetcher();
        let mut hier = MemoryHierarchy::default();
        let mut stats = AsapStats::default();
        p.prefetch(VirtAddr(0x9000_0000), &mut hier, Some, &mut stats);
        assert_eq!(stats.uncovered, 1);
        assert_eq!(stats.prefetches, 0);
    }

    #[test]
    fn timeliness_caps_the_leaf_fetch() {
        let hier = MemoryHierarchy::default();
        let dram = hier.config().dram_latency;
        let l2 = hier.config().l2.latency;
        // Cold walk, all steps DRAM: the leaf overlaps the prefetch
        // issued at miss time, so it pays the remaining DRAM latency —
        // floored at L2 (the line has to be read from somewhere).
        let steps = [dram, dram, dram, dram];
        let total = 4 * dram;
        let expected = total - dram + l2.max(dram.saturating_sub(3 * dram));
        assert_eq!(asap_adjusted_cycles(total, &steps, &hier), expected);
        // A leaf already cheaper than the cap is left alone.
        let steps = [dram, 4];
        assert_eq!(asap_adjusted_cycles(dram + 4, &steps, &hier), dram + 4);
        // No steps: nothing to adjust.
        assert_eq!(asap_adjusted_cycles(123, &[], &hier), 123);
    }

    #[test]
    fn resolve_failure_skips_quietly() {
        let p = prefetcher();
        let mut hier = MemoryHierarchy::default();
        let mut stats = AsapStats::default();
        p.prefetch(VirtAddr(0x4000_5000), &mut hier, |_| None, &mut stats);
        assert_eq!(stats.prefetches, 0);
    }
}
