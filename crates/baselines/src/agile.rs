//! Agile Paging — Gandhi, Hill & Swift, ISCA'16.
//!
//! Agile paging starts a virtualized walk in the shadow page table (one
//! fetch per level, native-style) and switches to nested paging at a
//! configurable level, so frequently-changing lower levels avoid shadow
//! sync exits while stable upper levels avoid the 2D blow-up. A walk
//! costs between 4 (full shadow) and 24 (full nested) references
//! (Table 6). The residual VM-exit overhead — only upper-level guest
//! page-table changes trap — is exposed via [`agile_sync_events`].

use crate::BaselineError;
use dmt_cache::hierarchy::MemoryHierarchy;
use dmt_cache::pwc::PageWalkCache;
use dmt_mem::{MemoryOps, PageSize, PhysAddr, VirtAddr};
use dmt_pgtable::pte::Pte;
use dmt_pgtable::radix::RadixPageTable;
use dmt_pgtable::walk::{walk_dimension, WalkDim, WalkStep};

/// Outcome of an agile-paging walk.
#[derive(Debug, Clone)]
pub struct AgileOutcome {
    /// Translated host-physical address.
    pub pa: PhysAddr,
    /// Guest mapping size.
    pub size: PageSize,
    /// Total cycles.
    pub cycles: u64,
    /// All PTE fetches: shadow steps are tagged [`WalkDim::Native`].
    pub steps: Vec<WalkStep>,
}

impl AgileOutcome {
    /// Sequential memory references.
    pub fn refs(&self) -> u64 {
        self.steps.len() as u64
    }
}

/// Compute the guest-entry gPA chain for the unshadowed levels — the
/// caller's software-side preparation for [`agile_walk`] (in hardware
/// this address arithmetic is the walker's normal job; separating it
/// keeps the borrow structure simple).
pub fn guest_entry_chain<V: MemoryOps>(
    gpt: &RadixPageTable,
    gview: &V,
    gva: VirtAddr,
    start_level: u8,
) -> Vec<(u8, PhysAddr)> {
    let mut chain = Vec::new();
    for level in (1..=start_level).rev() {
        match gpt.entry_pa(gview, gva, level) {
            Some(pa) => chain.push((level, pa)),
            None => break,
        }
    }
    chain
}

/// Perform an agile-paging walk: the top `shadow_levels` levels are
/// fetched from the shadow table, the remaining guest levels go through
/// nested (2D) translation.
///
/// `spt` must hold the full gVA→hPA mapping (agile keeps it for the
/// shadowed portion); `guest_entries` is the per-level gPA chain from
/// [`guest_entry_chain`]; `hpt` maps gPA→hPA.
///
/// # Errors
///
/// Returns [`BaselineError::NotMapped`] when any dimension misses.
///
/// # Panics
///
/// Panics if `shadow_levels` is 0 or ≥ 4 (use plain shadow paging then).
#[allow(clippy::too_many_arguments)] // the walk spans three tables plus MMU caches
pub fn agile_walk<M: MemoryOps>(
    spt: &RadixPageTable,
    guest_entries: &[(u8, PhysAddr)],
    hpt: &RadixPageTable,
    pm: &mut M,
    gva: VirtAddr,
    hier: &mut MemoryHierarchy,
    mut npwc: Option<&mut PageWalkCache>,
    shadow_levels: u8,
) -> Result<AgileOutcome, BaselineError> {
    assert!((1..=3).contains(&shadow_levels), "switch point must be 1..=3");
    let mut cycles = 0u64;
    let mut steps = Vec::new();

    // Shadowed upper levels: native-style fetches from the sPT.
    for level in ((4 - shadow_levels + 1)..=4).rev() {
        let slot = spt
            .entry_pa(pm, gva, level)
            .ok_or(BaselineError::NotMapped { va: gva.raw() })?;
        let (_, cyc) = hier.access(slot.raw());
        cycles += cyc;
        steps.push(WalkStep {
            dim: WalkDim::Native,
            level,
            pte_pa: slot,
            cycles: cyc,
        });
        if !Pte(pm.read_word(slot)).present() {
            return Err(BaselineError::NotMapped { va: gva.raw() });
        }
    }

    // Nested lower levels: host walk per guest entry + the entry fetch.
    let mut entries = guest_entries
        .iter()
        .filter(|(l, _)| *l <= 4 - shadow_levels);
    let (data_gpa, gsize) = loop {
        let (glevel, entry_gpa) = *entries
            .next()
            .ok_or(BaselineError::NotMapped { va: gva.raw() })?;
        let host = walk_dimension(
            hpt,
            pm,
            VirtAddr(entry_gpa.raw()),
            WalkDim::Host,
            hier,
            npwc.as_deref_mut(),
        )?;
        cycles += host.cycles;
        steps.extend(host.steps);
        let (_, cyc) = hier.access(host.pa.raw());
        cycles += cyc;
        steps.push(WalkStep {
            dim: WalkDim::Guest,
            level: glevel,
            pte_pa: host.pa,
            cycles: cyc,
        });
        let gpte = Pte(pm.read_word(host.pa));
        if !gpte.present() {
            return Err(BaselineError::NotMapped { va: gva.raw() });
        }
        if gpte.is_leaf_at(glevel) {
            let size = match glevel {
                1 => PageSize::Size4K,
                2 => PageSize::Size2M,
                3 => PageSize::Size1G,
                _ => return Err(BaselineError::NotMapped { va: gva.raw() }),
            };
            break (
                PhysAddr(gpte.phys_addr().raw() + gva.offset_in(size)),
                size,
            );
        }
    };

    // Final host walk for the data gPA.
    let host = walk_dimension(
        hpt,
        pm,
        VirtAddr(data_gpa.raw()),
        WalkDim::Host,
        hier,
        npwc,
    )?;
    cycles += host.cycles;
    let pa = host.pa;
    steps.extend(host.steps);

    Ok(AgileOutcome {
        pa,
        size: gsize,
        cycles,
        steps,
    })
}

/// Agile paging's residual shadow-sync VM exits: only guest updates to
/// the shadowed upper levels trap. With `shadow_levels = 2`, that is one
/// exit per new L2 subtree — `faults / 512` of full shadow paging's
/// per-PTE exits, for 4 KiB faults.
pub fn agile_sync_events(total_faults: u64, shadow_levels: u8, guest_thp: bool) -> u64 {
    // The lowest shadowed level is 5 - shadow_levels; an entry there
    // changes once per new subtree below it.
    let faults_per_exit: u64 = if guest_thp {
        // Faults are 2 MiB pages (leaves at L2).
        512u64.pow(3u32.saturating_sub(shadow_levels as u32).max(1))
    } else {
        512u64.pow(4 - shadow_levels as u32)
    };
    total_faults.div_ceil(faults_per_exit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_event_scaling() {
        // Shadow over L4+L3 (switch at L2): an exit per new L2 table,
        // i.e. per 512^2 = 262144 4 KiB faults.
        assert_eq!(agile_sync_events(1 << 20, 2, false), 4);
        // Shadow over L4 only: an exit per new L3 table (512^3 faults).
        assert_eq!(agile_sync_events(1 << 30, 1, false), 8);
        // Shadow down to L2: an exit per new L1 table (512 faults).
        assert_eq!(agile_sync_events(1 << 20, 3, false), 2048);
        // Always far fewer than shadow paging's one-per-fault.
        assert!(agile_sync_events(1 << 20, 2, false) < 1 << 20);
    }
}
