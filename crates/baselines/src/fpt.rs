//! Flattened Page Tables (FPT) — Park et al., ASPLOS'22 ("Every Walk's a
//! Hit").
//!
//! FPT merges adjacent radix levels: L4·L3 become one 18-bit-indexed
//! table and L2·L1 another, so a native walk is 2 sequential fetches and
//! a virtualized 2D walk is 8 (Table 6). Each flattened table is a 2 MiB
//! physically contiguous region — FPT shares DMT's contiguity appetite,
//! which is why the paper groups them.
//!
//! 2 MiB mappings are stored once per 2 MiB group in the flattened leaf
//! table, with the covering upper entry flagged "huge region" so the
//! walker indexes coarsely — the walk stays at 2 fetches for every page
//! size and the leaf array stays small (8 B per 2 MiB, not per 4 KiB).
//! Regions must be size-homogeneous per 1 GiB upper entry.

use crate::BaselineError;
use dmt_cache::hierarchy::MemoryHierarchy;
use dmt_cache::set_assoc::SetAssoc;
use dmt_mem::buddy::FrameKind;
use dmt_mem::{MemoryOps, PageSize, PhysAddr, PhysMemory, VirtAddr};
use dmt_pgtable::pte::{Pte, PteFlags};
use std::collections::HashMap;

/// Entries per flattened table (18 index bits).
const FLAT_ENTRIES: u64 = 1 << 18;
/// Frames per flattened table (2 MiB).
const FLAT_FRAMES: u64 = FLAT_ENTRIES * 8 / 4096;

/// Index into the upper (L4·L3) table: VA\[47:30\].
fn upper_index(va: VirtAddr) -> u64 {
    (va.raw() >> 30) & (FLAT_ENTRIES - 1)
}

/// Index into the lower (L2·L1) table: VA\[29:12\].
fn lower_index(va: VirtAddr) -> u64 {
    (va.raw() >> 12) & (FLAT_ENTRIES - 1)
}

/// One step of an FPT walk.
#[derive(Debug, Clone, Copy)]
pub struct FptStep {
    /// Physical address fetched.
    pub slot: PhysAddr,
    /// Cycles.
    pub cycles: u64,
}

/// Outcome of an FPT translation.
#[derive(Debug, Clone)]
pub struct FptOutcome {
    /// Translated physical address.
    pub pa: PhysAddr,
    /// Mapping size.
    pub size: PageSize,
    /// Total cycles.
    pub cycles: u64,
    /// Sequential fetches.
    pub steps: Vec<FptStep>,
}

impl FptOutcome {
    /// Sequential memory references.
    pub fn refs(&self) -> u64 {
        self.steps.len() as u64
    }
}

/// A two-level flattened page table, with a small upper-entry cache
/// standing in for the page-walk cache real FPT systems keep (a cached
/// upper entry turns the walk into a single lower fetch, which is how
/// "Every Walk's a Hit" gets its name).
#[derive(Debug, Clone)]
pub struct FlatPageTable {
    /// The upper (L4·L3) table's base.
    root: PhysAddr,
    /// Lower tables by upper index.
    lowers: HashMap<u64, PhysAddr>,
    /// Upper-entry cache tags (32 entries, like the L2-level PWC).
    upper_cache: SetAssoc,
    /// Cached upper entries by index.
    upper_payload: HashMap<u64, Pte>,
    /// Whether the upper-entry cache is consulted (disabled for
    /// worst-case Table 6 analysis).
    cache_enabled: bool,
}

impl FlatPageTable {
    /// Allocate the 2 MiB upper table.
    ///
    /// # Errors
    ///
    /// Propagates contiguous-allocation failure.
    pub fn new<M: MemoryOps>(pm: &mut M, alloc: &mut impl FnMut(&mut M, u64) -> dmt_mem::Result<dmt_mem::Pfn>) -> Result<Self, BaselineError> {
        let root = alloc(pm, FLAT_FRAMES)?;
        Ok(FlatPageTable {
            root: PhysAddr::from_pfn(root),
            lowers: HashMap::new(),
            upper_cache: SetAssoc::new(1, 32),
            upper_payload: HashMap::new(),
            cache_enabled: true,
        })
    }

    /// Convenience constructor over host physical memory.
    ///
    /// # Errors
    ///
    /// Propagates contiguous-allocation failure.
    pub fn new_host(pm: &mut PhysMemory) -> Result<Self, BaselineError> {
        let root = pm.alloc_contig(FLAT_FRAMES, FrameKind::PageTable)?;
        Ok(FlatPageTable {
            root: PhysAddr::from_pfn(root),
            lowers: HashMap::new(),
            upper_cache: SetAssoc::new(1, 32),
            upper_payload: HashMap::new(),
            cache_enabled: true,
        })
    }

    /// Flush the upper-entry cache (tags and payloads), as a TLB-flush
    /// analog — the mapping itself is untouched. The sharded-replay
    /// epoch barrier relies on this to make warm-cache state a function
    /// of position in the trace (DESIGN.md §14).
    pub fn flush_upper_cache(&mut self) {
        self.upper_cache.flush();
        self.upper_payload.clear();
    }

    /// Disable or enable the upper-entry cache (worst-case analysis).
    pub fn set_upper_cache(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
        if !enabled {
            self.upper_cache.flush();
            self.upper_payload.clear();
        }
    }

    /// Slot of the upper-table entry for `va`.
    pub fn upper_slot(&self, va: VirtAddr) -> PhysAddr {
        self.root + upper_index(va) * 8
    }

    /// Slot of the lower-table entry for `va`, given the lower base.
    pub fn lower_slot(base: PhysAddr, va: VirtAddr) -> PhysAddr {
        base + lower_index(va) * 8
    }

    /// Slot for a 2 MiB leaf in a huge-flagged region: coarse index
    /// VA\[29:21\] within the same table.
    pub fn lower_slot_huge(base: PhysAddr, va: VirtAddr) -> PhysAddr {
        base + ((va.raw() >> 21) & 0x1ff) * 8
    }

    /// Map a page (software).
    ///
    /// # Errors
    ///
    /// Propagates lower-table allocation failure.
    pub fn map<M: MemoryOps>(
        &mut self,
        pm: &mut M,
        va: VirtAddr,
        pa: PhysAddr,
        size: PageSize,
        mut alloc: impl FnMut(&mut M, u64) -> dmt_mem::Result<dmt_mem::Pfn>,
    ) -> Result<(), BaselineError> {
        assert!(size != PageSize::Size1G, "FPT models 4K/2M leaves");
        let ui = upper_index(va);
        let lower = match self.lowers.get(&ui) {
            Some(b) => *b,
            None => {
                let base = PhysAddr::from_pfn(alloc(pm, FLAT_FRAMES)?);
                pm.write_word(self.upper_slot(va), Pte::table(base.pfn()).raw());
                self.lowers.insert(ui, base);
                base
            }
        };
        match size {
            PageSize::Size4K => {
                pm.write_word(
                    Self::lower_slot(lower, va),
                    Pte::leaf(pa.pfn(), PteFlags::WRITABLE).raw(),
                );
            }
            PageSize::Size2M => {
                // Flag the upper entry as a huge region and store one
                // leaf at the coarse index.
                let up = self.upper_slot(va);
                let upper = Pte(pm.read_word(up));
                pm.write_word(up, upper.raw() | PteFlags::HUGE.0);
                pm.write_word(
                    Self::lower_slot_huge(lower, va),
                    Pte::huge_leaf(pa.pfn(), PteFlags::WRITABLE).raw(),
                );
            }
            PageSize::Size1G => unreachable!(),
        }
        Ok(())
    }

    /// Native translation: exactly two sequential fetches.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::NotMapped`] for absent entries.
    pub fn translate<M: MemoryOps>(
        &mut self,
        pm: &M,
        hier: &mut MemoryHierarchy,
        va: VirtAddr,
    ) -> Result<FptOutcome, BaselineError> {
        let mut steps = Vec::with_capacity(2);
        let ui = upper_index(va);
        let mut cycles = 0u64;
        // Upper-entry cache (the PWC analog): a hit costs one cycle and
        // skips the upper fetch.
        let upper = if self.cache_enabled && self.upper_cache.lookup(ui) {
            cycles += 1;
            self.upper_payload[&ui]
        } else {
            let up = self.upper_slot(va);
            let (_, c1) = hier.access(up.raw());
            cycles += c1;
            steps.push(FptStep { slot: up, cycles: c1 });
            let pte = Pte(pm.read_word(up));
            if self.cache_enabled && pte.present() {
                if let Some(evicted) = self.upper_cache.insert(ui) {
                    self.upper_payload.remove(&evicted);
                }
                self.upper_payload.insert(ui, pte);
            }
            pte
        };
        if !upper.present() {
            return Err(BaselineError::NotMapped { va: va.raw() });
        }
        // Huge-flagged regions are probed at the coarse index first; a
        // miss there (mixed-size region, e.g. an unaligned VMA edge)
        // falls back to the fine index with a third fetch.
        let leaf = if upper.huge() {
            let coarse = Self::lower_slot_huge(upper.phys_addr(), va);
            let (_, c2) = hier.access(coarse.raw());
            cycles += c2;
            steps.push(FptStep { slot: coarse, cycles: c2 });
            let pte = Pte(pm.read_word(coarse));
            if pte.present() && pte.huge() {
                pte
            } else {
                let fine = Self::lower_slot(upper.phys_addr(), va);
                let (_, c3) = hier.access(fine.raw());
                cycles += c3;
                steps.push(FptStep { slot: fine, cycles: c3 });
                Pte(pm.read_word(fine))
            }
        } else {
            let fine = Self::lower_slot(upper.phys_addr(), va);
            let (_, c2) = hier.access(fine.raw());
            cycles += c2;
            steps.push(FptStep { slot: fine, cycles: c2 });
            Pte(pm.read_word(fine))
        };
        if !leaf.present() {
            return Err(BaselineError::NotMapped { va: va.raw() });
        }
        let size = if leaf.huge() { PageSize::Size2M } else { PageSize::Size4K };
        Ok(FptOutcome {
            pa: PhysAddr(leaf.phys_addr().raw() + va.offset_in(size)),
            size,
            cycles,
            steps,
        })
    }
}

/// 2D FPT translation for a virtualized guest: 8 sequential fetches
/// (2 guest levels × (2 host + 1 guest) + 2 final host).
///
/// `gfpt` entries hold gPAs; `gpa_to_hpa` supplies the software
/// redirection for reading guest slots (their *lookup cost* is the host
/// FPT fetches, exactly as in the design).
///
/// # Errors
///
/// Returns [`BaselineError::NotMapped`] on a miss in either dimension.
pub fn nested_translate(
    gfpt: &mut FlatPageTable,
    hfpt: &mut FlatPageTable,
    pm: &PhysMemory,
    hier: &mut MemoryHierarchy,
    gva: VirtAddr,
    gpa_to_hpa: impl Fn(PhysAddr) -> Option<PhysAddr>,
) -> Result<FptOutcome, BaselineError> {
    let mut steps = Vec::with_capacity(8);
    let mut cycles = 0u64;

    // Host-resolve then fetch one guest slot.
    fn fetch_guest_slot(
        hfpt: &mut FlatPageTable,
        pm: &PhysMemory,
        gpa_to_hpa: &impl Fn(PhysAddr) -> Option<PhysAddr>,
        slot_gpa: PhysAddr,
        steps: &mut Vec<FptStep>,
        hier: &mut MemoryHierarchy,
    ) -> Result<(Pte, u64), BaselineError> {
        let host = hfpt.translate(pm, hier, VirtAddr(slot_gpa.raw()))?;
        let mut c = host.cycles;
        steps.extend(host.steps);
        let slot_hpa = gpa_to_hpa(slot_gpa).ok_or(BaselineError::NotMapped {
            va: slot_gpa.raw(),
        })?;
        let (_, cyc) = hier.access(slot_hpa.raw());
        c += cyc;
        steps.push(FptStep {
            slot: slot_hpa,
            cycles: cyc,
        });
        Ok((Pte(pm.read_word(slot_hpa)), c))
    }

    // Guest upper entry.
    let (gupper, c) =
        fetch_guest_slot(hfpt, pm, &gpa_to_hpa, gfpt.upper_slot(gva), &mut steps, hier)?;
    cycles += c;
    if !gupper.present() {
        return Err(BaselineError::NotMapped { va: gva.raw() });
    }
    // Guest lower entry (coarse index in huge-flagged regions, falling
    // back to the fine index for mixed-size edges).
    let mut gleaf;
    if gupper.huge() {
        let coarse = FlatPageTable::lower_slot_huge(gupper.phys_addr(), gva);
        let (pte, c) = fetch_guest_slot(hfpt, pm, &gpa_to_hpa, coarse, &mut steps, hier)?;
        cycles += c;
        gleaf = pte;
        if !(gleaf.present() && gleaf.huge()) {
            let fine = FlatPageTable::lower_slot(gupper.phys_addr(), gva);
            let (pte, c) = fetch_guest_slot(hfpt, pm, &gpa_to_hpa, fine, &mut steps, hier)?;
            cycles += c;
            gleaf = pte;
        }
    } else {
        let fine = FlatPageTable::lower_slot(gupper.phys_addr(), gva);
        let (pte, c) = fetch_guest_slot(hfpt, pm, &gpa_to_hpa, fine, &mut steps, hier)?;
        cycles += c;
        gleaf = pte;
    }
    if !gleaf.present() {
        return Err(BaselineError::NotMapped { va: gva.raw() });
    }
    let gsize = if gleaf.huge() { PageSize::Size2M } else { PageSize::Size4K };
    let data_gpa = PhysAddr(gleaf.phys_addr().raw() + gva.offset_in(gsize));

    // Final host translation of the data gPA.
    let host = hfpt.translate(pm, hier, VirtAddr(data_gpa.raw()))?;
    cycles += host.cycles;
    let pa = host.pa;
    steps.extend(host.steps);

    Ok(FptOutcome {
        pa,
        size: gsize,
        cycles,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_mem::Pfn;

    fn host_alloc(pm: &mut PhysMemory, frames: u64) -> dmt_mem::Result<Pfn> {
        pm.alloc_contig(frames, FrameKind::PageTable)
    }

    #[test]
    fn native_walk_is_two_fetches() {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut fpt = FlatPageTable::new_host(&mut pm).unwrap();
        let va = VirtAddr(0x7f12_3456_7000);
        fpt.map(&mut pm, va, PhysAddr(0x5000), PageSize::Size4K, host_alloc)
            .unwrap();
        let mut hier = MemoryHierarchy::default();
        let out = fpt.translate(&pm, &mut hier, va + 0x21).unwrap();
        assert_eq!(out.refs(), 2, "Table 6: FPT native = 2");
        assert_eq!(out.pa, PhysAddr(0x5021));
    }

    #[test]
    fn huge_pages_stay_two_fetches() {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut fpt = FlatPageTable::new_host(&mut pm).unwrap();
        let va = VirtAddr(0x4000_0000);
        fpt.map(&mut pm, va, PhysAddr(0x20_0000), PageSize::Size2M, host_alloc)
            .unwrap();
        let mut hier = MemoryHierarchy::default();
        let out = fpt.translate(&pm, &mut hier, va + 0x12_3456).unwrap();
        assert_eq!(out.refs(), 2);
        assert_eq!(out.size, PageSize::Size2M);
        assert_eq!(out.pa, PhysAddr(0x20_0000 + 0x12_3456));
    }

    #[test]
    fn missing_mapping_errors() {
        let mut pm = PhysMemory::new_bytes(32 << 20);
        let mut fpt = FlatPageTable::new_host(&mut pm).unwrap();
        let mut hier = MemoryHierarchy::default();
        assert!(fpt.translate(&pm, &mut hier, VirtAddr(0x1000)).is_err());
    }

    #[test]
    fn virtualized_walk_is_eight_fetches() {
        let mut pm = PhysMemory::new_bytes(256 << 20);
        const OFF: u64 = 128 << 20;
        // Host FPT: gPA x -> hPA x + OFF.
        let mut hfpt = FlatPageTable::new_host(&mut pm).unwrap();
        for g in 0..(16 << 20 >> 12) {
            hfpt.map(
                &mut pm,
                VirtAddr(g << 12),
                PhysAddr((g << 12) + OFF),
                PageSize::Size4K,
                host_alloc,
            )
            .unwrap();
        }
        // Guest FPT whose tables live in guest physical space: allocate
        // its regions from low "gPA" numbers and write entries at +OFF.
        let mut next_gframe = 0u64;
        let mut galloc = |_pm: &mut GuestShift, frames: u64| {
            let g = next_gframe;
            next_gframe += frames;
            Ok(Pfn(g))
        };
        struct GuestShift {
            pm: PhysMemory,
        }
        impl MemoryOps for GuestShift {
            fn read_word(&self, a: PhysAddr) -> u64 {
                self.pm.read_word(PhysAddr(a.raw() + OFF))
            }
            fn write_word(&mut self, a: PhysAddr, v: u64) {
                self.pm.write_word(PhysAddr(a.raw() + OFF), v);
            }
            fn alloc_zeroed_frame(&mut self, _k: FrameKind) -> dmt_mem::Result<Pfn> {
                unreachable!()
            }
            fn free_frame(&mut self, _p: Pfn) -> dmt_mem::Result<()> {
                unreachable!()
            }
            fn copy_frame(&mut self, _s: Pfn, _d: Pfn) {
                unreachable!()
            }
        }
        let mut gview = GuestShift { pm };
        let mut gfpt = FlatPageTable::new(&mut gview, &mut galloc).unwrap();
        let gva = VirtAddr(0x7f00_0000_0000);
        gfpt.map(&mut gview, gva, PhysAddr(0x50_0000), PageSize::Size4K, galloc)
            .unwrap();
        let pm = gview.pm;
        let mut hier = MemoryHierarchy::default();
        // Worst case (Table 6) is measured with the upper caches off.
        gfpt.set_upper_cache(false);
        hfpt.set_upper_cache(false);
        let out = nested_translate(&mut gfpt, &mut hfpt, &pm, &mut hier, gva, |gpa| {
            Some(PhysAddr(gpa.raw() + OFF))
        })
        .unwrap();
        assert_eq!(out.refs(), 8, "Table 6: FPT virtualized = 8");
        assert_eq!(out.pa, PhysAddr(0x50_0000 + OFF));
    }
}
