//! Elastic Cuckoo Page Tables (ECPT) — Skarlatos et al., ASPLOS'20, and
//! the nested variant of Stojkovic et al., ASPLOS'22.
//!
//! ECPT replaces the radix tree with d-ary cuckoo hash tables, one per
//! page size. A translation issues all `d × sizes` probes **in
//! parallel**: one sequential step natively, three sequentially for the
//! nested variant (guest probe → host probe for the guest entry → host
//! probe for the data), with up to 81 parallel accesses. Tables resize
//! ("elastically") when load exceeds a threshold.
//!
//! This implementation stores entries in simulated physical memory —
//! 16-byte `(tag, pte)` slots in per-way contiguous regions — so probe
//! latency is decided by the same cache hierarchy as every other design.

use crate::BaselineError;
use dmt_cache::hierarchy::MemoryHierarchy;
use dmt_cache::set_assoc::SetAssoc;
use std::collections::HashMap;
use dmt_mem::buddy::FrameKind;
use dmt_mem::{MemoryOps, PageSize, PhysAddr, PhysMemory, VirtAddr};
use dmt_pgtable::pte::Pte;

/// Number of cuckoo ways per table (the paper's d = 3).
pub const WAYS: usize = 3;
/// Cycles charged for the parallel hash computations per lookup step.
pub const HASH_CYCLES: u64 = 2;
/// Resize when a way exceeds this load factor.
const MAX_LOAD: f64 = 0.6;
/// Maximum cuckoo kicks before declaring the insert path full.
const MAX_KICKS: usize = 32;

/// Hash seeds per way.
const SEEDS: [u64; WAYS] = [0x9e37_79b9_7f4a_7c15, 0xc2b2_ae3d_27d4_eb4f, 0x1656_67b1_9e37_79f9];

fn hash(way: usize, vpn: u64, slots: u64) -> u64 {
    (vpn ^ SEEDS[way]).wrapping_mul(SEEDS[(way + 1) % WAYS]) % slots
}

/// Slot index for `vpn`: ECPT hashes at 8-page granularity so the 8
/// PTEs of consecutive pages share one cache line (the design packs a
/// full 64-byte line of PTEs per hash entry), preserving the spatial
/// locality radix tables get for free.
fn slot_index(way: usize, vpn: u64, slots: u64) -> u64 {
    let groups = (slots / 8).max(1);
    hash(way, vpn >> 3, groups) * 8 + (vpn & 7)
}

/// One page-size's cuckoo table: `WAYS` contiguous arrays of 16-byte
/// slots.
#[derive(Debug, Clone)]
struct CuckooTable {
    /// Base frame of each way's array.
    way_base: [PhysAddr; WAYS],
    /// Slots per way.
    slots: u64,
    /// Live entries.
    occupancy: u64,
    size: PageSize,
}

impl CuckooTable {
    fn new<M: MemoryOps>(
        pm: &mut M,
        alloc: &mut dyn FnMut(&mut M, u64) -> dmt_mem::Result<dmt_mem::Pfn>,
        slots: u64,
        size: PageSize,
    ) -> Result<Self, BaselineError> {
        let slots = slots.div_ceil(8) * 8;
        let frames_per_way = (slots * 16).div_ceil(4096);
        let mut way_base = [PhysAddr(0); WAYS];
        for w in way_base.iter_mut() {
            let base = alloc(pm, frames_per_way)?;
            *w = PhysAddr::from_pfn(base);
        }
        Ok(CuckooTable {
            way_base,
            slots,
            occupancy: 0,
            size,
        })
    }

    fn slot_addr(&self, way: usize, idx: u64) -> PhysAddr {
        self.way_base[way] + idx * 16
    }

    fn read_slot<M: MemoryOps>(&self, pm: &M, way: usize, idx: u64) -> (u64, Pte) {
        let a = self.slot_addr(way, idx);
        (pm.read_word(a), Pte(pm.read_word(a + 8)))
    }

    fn write_slot<M: MemoryOps>(&self, pm: &mut M, way: usize, idx: u64, tag: u64, pte: Pte) {
        let a = self.slot_addr(way, idx);
        pm.write_word(a, tag);
        pm.write_word(a + 8, pte.raw());
    }

    /// Tag encoding: vpn+1 so the empty slot (0) is never a valid tag.
    fn tag(vpn: u64) -> u64 {
        vpn + 1
    }

    /// Insert with cuckoo kicks; `Err` means the table needs a resize.
    fn insert<M: MemoryOps>(&mut self, pm: &mut M, vpn: u64, pte: Pte) -> Result<(), (u64, Pte)> {
        let (mut tag, mut pte) = (Self::tag(vpn), pte);
        let mut way = 0usize;
        for _ in 0..MAX_KICKS {
            let v = tag - 1;
            let idx = slot_index(way, v, self.slots);
            let (old_tag, old_pte) = self.read_slot(pm, way, idx);
            self.write_slot(pm, way, idx, tag, pte);
            if old_tag == 0 || old_tag == tag {
                if old_tag == 0 {
                    self.occupancy += 1;
                }
                return Ok(());
            }
            // Kick the evicted entry to its next way.
            tag = old_tag;
            pte = old_pte;
            way = (way + 1) % WAYS;
        }
        Err((tag, pte))
    }

    fn load(&self) -> f64 {
        self.occupancy as f64 / (self.slots * WAYS as u64) as f64
    }
}

/// Per-lookup-step cost: parallel probes resolved as max latency.
#[derive(Debug, Clone, Copy, Default)]
pub struct EcptStep {
    /// Parallel memory probes issued.
    pub parallel_refs: u64,
    /// Cycles (max of the parallel probes + hash).
    pub cycles: u64,
}

/// Outcome of an ECPT translation.
#[derive(Debug, Clone)]
pub struct EcptOutcome {
    /// Translated physical address.
    pub pa: PhysAddr,
    /// Page size of the mapping.
    pub size: PageSize,
    /// Total cycles (sum over sequential steps).
    pub cycles: u64,
    /// The sequential steps (1 native, 3 nested).
    pub steps: Vec<EcptStep>,
}

impl EcptOutcome {
    /// Sequential memory steps.
    pub fn seq_refs(&self) -> u64 {
        self.steps.len() as u64
    }

    /// Total parallel probes across all steps.
    pub fn parallel_refs(&self) -> u64 {
        self.steps.iter().map(|s| s.parallel_refs).sum()
    }
}

/// An elastic cuckoo page table set (one cuckoo table per page size),
/// with a Cuckoo Walk Cache (CWC) remembering which `(size, way)` holds
/// recently translated regions so warm lookups issue a single probe
/// instead of the full parallel set — the paper's designs rely on this.
#[derive(Debug, Clone)]
pub struct Ecpt {
    tables: Vec<CuckooTable>,
    resizes: u64,
    /// CWC tags, keyed at 2 MiB region granularity; 64 entries, 4-way.
    cwc: SetAssoc,
    /// CWC payloads: region -> table index (the page size to probe).
    cwc_payload: HashMap<u64, usize>,
}

impl Ecpt {
    /// Create tables with `initial_slots` slots per way for the 4 KiB
    /// size (huge-page tables start smaller).
    ///
    /// # Errors
    ///
    /// Propagates contiguous-allocation failures (ECPT shares DMT's need
    /// for physical contiguity).
    pub fn new(pm: &mut PhysMemory, initial_slots: u64) -> Result<Self, BaselineError> {
        Self::new_in(
            pm,
            &mut |pm, frames| pm.alloc_contig(frames, FrameKind::PageTable),
            initial_slots,
        )
    }

    /// Create tables in an arbitrary address space (e.g. guest physical
    /// memory) with a caller-supplied contiguous allocator.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn new_in<M: MemoryOps>(
        pm: &mut M,
        alloc: &mut dyn FnMut(&mut M, u64) -> dmt_mem::Result<dmt_mem::Pfn>,
        initial_slots: u64,
    ) -> Result<Self, BaselineError> {
        Self::new_sized(pm, alloc, initial_slots, (initial_slots / 64).max(8))
    }

    /// Create tables with explicit 4 KiB and 2 MiB sizing (slots per
    /// way), for callers that know the page-size mix in advance.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn new_sized<M: MemoryOps>(
        pm: &mut M,
        alloc: &mut dyn FnMut(&mut M, u64) -> dmt_mem::Result<dmt_mem::Pfn>,
        slots_4k: u64,
        slots_2m: u64,
    ) -> Result<Self, BaselineError> {
        Ok(Ecpt {
            tables: vec![
                CuckooTable::new(pm, alloc, slots_4k.max(8), PageSize::Size4K)?,
                CuckooTable::new(pm, alloc, slots_2m.max(8), PageSize::Size2M)?,
                CuckooTable::new(pm, alloc, 8, PageSize::Size1G)?,
            ],
            resizes: 0,
            cwc: SetAssoc::with_capacity(64, 4),
            cwc_payload: HashMap::new(),
        })
    }

    /// Number of elastic resizes performed.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// Flush the Cuckoo Walk Cache (tags and payloads), as a TLB-flush
    /// analog — the tables themselves are untouched. The sharded-replay
    /// epoch barrier relies on this to make warm-cache state a function
    /// of position in the trace (DESIGN.md §14).
    pub fn flush_walk_cache(&mut self) {
        self.cwc.flush();
        self.cwc_payload.clear();
    }

    /// Map a page (software insert; resizes as needed).
    ///
    /// # Errors
    ///
    /// Propagates allocation failures during resize.
    pub fn map(
        &mut self,
        pm: &mut PhysMemory,
        va: VirtAddr,
        pa: PhysAddr,
        size: PageSize,
    ) -> Result<(), BaselineError> {
        self.map_in(
            pm,
            &mut |pm, frames| pm.alloc_contig(frames, FrameKind::PageTable),
            va,
            pa,
            size,
        )
    }

    /// Map a page in an arbitrary address space. Resizes allocate through
    /// `alloc`; old ways are leaked in that case (guest-space rigs size
    /// their tables to avoid resizing).
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn map_in<M: MemoryOps>(
        &mut self,
        pm: &mut M,
        alloc: &mut dyn FnMut(&mut M, u64) -> dmt_mem::Result<dmt_mem::Pfn>,
        va: VirtAddr,
        pa: PhysAddr,
        size: PageSize,
    ) -> Result<(), BaselineError> {
        let ti = self.table_index(size);
        let vpn = va.vpn_for(size);
        let pte = if size == PageSize::Size4K {
            Pte::leaf(pa.pfn(), dmt_pgtable::pte::PteFlags::WRITABLE)
        } else {
            Pte::huge_leaf(pa.pfn(), dmt_pgtable::pte::PteFlags::WRITABLE)
        };
        // The kick chain writes the incoming entry immediately; what can
        // be left homeless after MAX_KICKS is the *last displaced* entry,
        // which must be re-inserted after the resize or it is lost.
        let mut pending = vec![(vpn, pte)];
        while let Some((v, p)) = pending.pop() {
            if self.tables[ti].load() > MAX_LOAD {
                self.resize(pm, alloc, ti)?;
            }
            if let Err((homeless_tag, homeless_pte)) = self.tables[ti].insert(pm, v, p) {
                self.resize(pm, alloc, ti)?;
                pending.push((homeless_tag - 1, homeless_pte));
            }
        }
        Ok(())
    }

    /// Grow table `ti` to twice the slots and rehash (the "elastic"
    /// operation; modeled as a stop-the-world rehash). Old ways are freed
    /// only when `M` is host physical memory — other spaces leak them,
    /// which oversizes guest tables slightly (noted in DESIGN.md).
    fn resize<M: MemoryOps>(
        &mut self,
        pm: &mut M,
        alloc: &mut dyn FnMut(&mut M, u64) -> dmt_mem::Result<dmt_mem::Pfn>,
        ti: usize,
    ) -> Result<(), BaselineError> {
        let old = self.tables[ti].clone();
        let mut fresh = CuckooTable::new(pm, alloc, old.slots * 2, old.size)?;
        for way in 0..WAYS {
            for idx in 0..old.slots {
                let (tag, pte) = old.read_slot(pm, way, idx);
                if tag != 0 {
                    fresh
                        .insert(pm, tag - 1, pte)
                        .map_err(|_| BaselineError::EcptFull)?;
                }
            }
        }
        self.tables[ti] = fresh;
        self.resizes += 1;
        Ok(())
    }

    fn table_index(&self, size: PageSize) -> usize {
        match size {
            PageSize::Size4K => 0,
            PageSize::Size2M => 1,
            PageSize::Size1G => 2,
        }
    }

    /// One hardware lookup step. On a Cuckoo Walk Cache hit a single slot
    /// is probed; otherwise all ways of all tables go in parallel and the
    /// CWC is refilled.
    pub fn probe_step<M: MemoryOps>(
        &mut self,
        pm: &M,
        hier: &mut MemoryHierarchy,
        va: VirtAddr,
    ) -> (Option<(Pte, PageSize)>, EcptStep) {
        // The CWC predicts which page *size* backs a 2 MiB region, so a
        // warm lookup probes one table's ways instead of all tables'.
        let key = va.raw() >> 21;
        let predicted = if self.cwc.lookup(key) {
            self.cwc_payload.get(&key).copied()
        } else {
            None
        };
        let tables: Vec<usize> = match predicted {
            Some(ti) => vec![ti],
            None => (0..self.tables.len()).collect(),
        };
        let mut max_cycles = 0u64;
        let mut refs = 0u64;
        let mut hit = None;
        for &ti in &tables {
            let t = &self.tables[ti];
            let vpn = va.vpn_for(t.size);
            let want = CuckooTable::tag(vpn);
            for way in 0..WAYS {
                let idx = slot_index(way, vpn, t.slots);
                let (_, cyc) = hier.access(t.slot_addr(way, idx).raw());
                max_cycles = max_cycles.max(cyc);
                refs += 1;
                let (tag, pte) = t.read_slot(pm, way, idx);
                if tag == want && pte.present() && hit.is_none() {
                    hit = Some((pte, t.size));
                    if predicted.is_none() {
                        if let Some(evicted) = self.cwc.insert(key) {
                            self.cwc_payload.remove(&evicted);
                        }
                        self.cwc_payload.insert(key, ti);
                    }
                }
            }
        }
        if hit.is_none() && predicted.is_some() {
            // Stale size prediction: invalidate and redo the full probe,
            // keeping the wasted probes' cost.
            self.cwc.invalidate(key);
            self.cwc_payload.remove(&key);
            let (h, step) = self.probe_step(pm, hier, va);
            return (
                h,
                EcptStep {
                    parallel_refs: refs + step.parallel_refs,
                    cycles: max_cycles.max(step.cycles),
                },
            );
        }
        (
            hit,
            EcptStep {
                parallel_refs: refs,
                cycles: max_cycles + HASH_CYCLES,
            },
        )
    }

    /// Native translation: one sequential step (Table 6).
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::NotMapped`] on a missing entry.
    pub fn translate<M: MemoryOps>(
        &mut self,
        pm: &M,
        hier: &mut MemoryHierarchy,
        va: VirtAddr,
    ) -> Result<EcptOutcome, BaselineError> {
        let (hit, step) = self.probe_step(pm, hier, va);
        let (pte, size) = hit.ok_or(BaselineError::NotMapped { va: va.raw() })?;
        Ok(EcptOutcome {
            pa: PhysAddr(pte.phys_addr().raw() + va.offset_in(size)),
            size,
            cycles: step.cycles,
            steps: vec![step],
        })
    }
}

/// Nested ECPT: a guest ECPT (gVA→gPA) whose entries live in guest
/// physical memory, plus a host ECPT (gPA→hPA). Three sequential steps,
/// up to 81 parallel probes.
#[derive(Debug)]
pub struct NestedEcpt {
    /// Guest table (addresses within it are gPAs).
    pub guest: Ecpt,
    /// Host table (hPAs).
    pub host: Ecpt,
}

impl NestedEcpt {
    /// Translate a gVA: host-probe for the guest entry's location, probe
    /// the guest entry, host-probe for the data gPA.
    ///
    /// The guest table's slot addresses are gPAs; `gpa_to_hpa` supplies
    /// the software redirection for reading the slot contents, while the
    /// *cost* of locating them is the host probe step, as in the
    /// hardware design.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::NotMapped`] on a miss in either
    /// dimension.
    pub fn translate<M: MemoryOps>(
        &mut self,
        pm: &M,
        hier: &mut MemoryHierarchy,
        gva: VirtAddr,
        gpa_to_hpa: impl Fn(PhysAddr) -> Option<PhysAddr>,
    ) -> Result<EcptOutcome, BaselineError> {
        // Which guest candidates to consider: all ways of all sizes, or
        // only the CWC-predicted size's ways.
        let key = gva.raw() >> 21;
        let predicted = if self.guest.cwc.lookup(key) {
            self.guest.cwc_payload.get(&key).copied()
        } else {
            None
        };
        let candidates: Vec<(usize, usize)> = match predicted {
            Some(ti) => (0..WAYS).map(|w| (ti, w)).collect(),
            None => (0..self.guest.tables.len())
                .flat_map(|ti| (0..WAYS).map(move |w| (ti, w)))
                .collect(),
        };
        // Step 1: host probes for each guest candidate slot (parallel;
        // up to guest ways x host ways = 81 with 3 sizes, 1 x host ways
        // on a CWC hit).
        let mut step1 = EcptStep::default();
        for &(ti, way) in &candidates {
            let t = &self.guest.tables[ti];
            let vpn = gva.vpn_for(t.size);
            let idx = slot_index(way, vpn, t.slots);
            let slot_gpa = t.slot_addr(way, idx);
            let (_, hstep) = self.host.probe_step(pm, hier, VirtAddr(slot_gpa.raw()));
            step1.parallel_refs += hstep.parallel_refs;
            step1.cycles = step1.cycles.max(hstep.cycles);
        }
        // Step 2: fetch the guest entries themselves (parallel), reading
        // through the software redirection.
        let mut step2 = EcptStep::default();
        let mut ghit: Option<(Pte, PageSize)> = None;
        for &(ti, way) in &candidates {
            let t = &self.guest.tables[ti];
            let vpn = gva.vpn_for(t.size);
            let want = CuckooTable::tag(vpn);
            let idx = slot_index(way, vpn, t.slots);
            let slot_gpa = t.slot_addr(way, idx);
            let slot_hpa =
                gpa_to_hpa(slot_gpa).ok_or(BaselineError::NotMapped { va: gva.raw() })?;
            let (_, cyc) = hier.access(slot_hpa.raw());
            step2.parallel_refs += 1;
            step2.cycles = step2.cycles.max(cyc);
            let tag = pm.read_word(slot_hpa);
            let pte = Pte(pm.read_word(slot_hpa + 8));
            if tag == want && pte.present() && ghit.is_none() {
                ghit = Some((pte, t.size));
                if predicted.is_none() {
                    if let Some(evicted) = self.guest.cwc.insert(key) {
                        self.guest.cwc_payload.remove(&evicted);
                    }
                    self.guest.cwc_payload.insert(key, ti);
                }
            }
        }
        step2.cycles += HASH_CYCLES;
        let (gpte, gsize) = match ghit {
            Some(v) => v,
            None if predicted.is_some() => {
                // Stale CWC prediction: drop it and redo the full probe.
                self.guest.cwc.invalidate(key);
                self.guest.cwc_payload.remove(&key);
                return self.translate(pm, hier, gva, gpa_to_hpa);
            }
            None => return Err(BaselineError::NotMapped { va: gva.raw() }),
        };
        let data_gpa = PhysAddr(gpte.phys_addr().raw() + gva.offset_in(gsize));

        // Step 3: host probe for the data gPA.
        let (hhit, step3) = self.host.probe_step(pm, hier, VirtAddr(data_gpa.raw()));
        let (hpte, hsize) = hhit.ok_or(BaselineError::NotMapped { va: data_gpa.raw() })?;
        let pa = PhysAddr(hpte.phys_addr().raw() + VirtAddr(data_gpa.raw()).offset_in(hsize));

        Ok(EcptOutcome {
            pa,
            size: gsize,
            cycles: step1.cycles + step2.cycles + step3.cycles,
            steps: vec![step1, step2, step3],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_mem::Pfn;

    #[test]
    fn map_translate_roundtrip() {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut ecpt = Ecpt::new(&mut pm, 1024).unwrap();
        let mut hier = MemoryHierarchy::default();
        for i in 0..200u64 {
            ecpt.map(
                &mut pm,
                VirtAddr(0x10_0000_0000 + i * 4096),
                PhysAddr((5000 + i) << 12),
                PageSize::Size4K,
            )
            .unwrap();
        }
        for i in (0..200u64).step_by(13) {
            let out = ecpt
                .translate(&pm, &mut hier, VirtAddr(0x10_0000_0000 + i * 4096 + 0x77))
                .unwrap();
            assert_eq!(out.pa, PhysAddr(((5000 + i) << 12) + 0x77));
            assert_eq!(out.seq_refs(), 1, "native ECPT: one sequential step");
            // Cold regions probe 3 ways x 3 sizes; once the CWC predicts
            // the size, 3 ways of one table suffice.
            assert!(
                out.parallel_refs() == 9 || out.parallel_refs() == 3,
                "parallel refs {}",
                out.parallel_refs()
            );
        }
    }

    #[test]
    fn missing_entry_errors() {
        let mut pm = PhysMemory::new_bytes(16 << 20);
        let mut ecpt = Ecpt::new(&mut pm, 64).unwrap();
        let mut hier = MemoryHierarchy::default();
        assert!(matches!(
            ecpt.translate(&pm, &mut hier, VirtAddr(0x123000)),
            Err(BaselineError::NotMapped { .. })
        ));
    }

    #[test]
    fn elastic_resize_preserves_entries() {
        let mut pm = PhysMemory::new_bytes(128 << 20);
        let mut ecpt = Ecpt::new(&mut pm, 16).unwrap(); // tiny: forces resizes
        let mut hier = MemoryHierarchy::default();
        for i in 0..2_000u64 {
            ecpt.map(
                &mut pm,
                VirtAddr(i * 4096),
                PhysAddr((9000 + i) << 12),
                PageSize::Size4K,
            )
            .unwrap();
        }
        assert!(ecpt.resizes() > 0, "tiny table must have resized");
        for i in (0..2_000u64).step_by(97) {
            let out = ecpt.translate(&pm, &mut hier, VirtAddr(i * 4096)).unwrap();
            assert_eq!(out.pa, PhysAddr((9000 + i) << 12), "entry {i}");
        }
    }

    #[test]
    fn huge_pages_use_their_own_table() {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut ecpt = Ecpt::new(&mut pm, 256).unwrap();
        let mut hier = MemoryHierarchy::default();
        ecpt.map(&mut pm, VirtAddr(0), PhysAddr(0x20_0000), PageSize::Size2M)
            .unwrap();
        let out = ecpt.translate(&pm, &mut hier, VirtAddr(0x12_3456)).unwrap();
        assert_eq!(out.size, PageSize::Size2M);
        assert_eq!(out.pa, PhysAddr(0x20_0000 + 0x12_3456));
    }

    #[test]
    fn nested_ecpt_is_three_steps_many_parallel() {
        let mut pm = PhysMemory::new_bytes(256 << 20);
        // "Guest physical" = host physical + OFFSET, host ECPT maps it.
        const OFF: u64 = 64 << 20;
        let mut guest = Ecpt::new(&mut pm, 512).unwrap();
        let mut host = Ecpt::new(&mut pm, 4096).unwrap();
        // Host maps gPA x -> hPA x + OFF for the low 32 MiB.
        for g in 0..(32 << 20 >> 12) {
            host.map(
                &mut pm,
                VirtAddr(g << 12),
                PhysAddr((g << 12) + OFF),
                PageSize::Size4K,
            )
            .unwrap();
        }
        // The guest's own slot arrays were allocated in host memory; we
        // treat their addresses as gPAs, so guest contents must be
        // written at gPA+OFF. Rebuild the guest table through a shifted
        // view by writing entries manually: map() wrote them at the raw
        // (unshifted) location, so copy them over.
        for i in 0..64u64 {
            guest
                .map(
                    &mut pm,
                    VirtAddr(0x7f00_0000_0000 + i * 4096),
                    PhysAddr((100 + i) << 12),
                    PageSize::Size4K,
                )
                .unwrap();
        }
        // Relocate guest table contents to +OFF (simulating that the
        // guest wrote them in its own physical space).
        for t in &guest.tables {
            let frames = (t.slots * 16).div_ceil(4096);
            for w in 0..WAYS {
                for f in 0..frames {
                    let src = Pfn(t.way_base[w].pfn().0 + f);
                    let dst = Pfn(src.0 + (OFF >> 12));
                    pm.copy_frame(src, dst);
                }
            }
        }
        let mut nested = NestedEcpt { guest, host };
        let mut hier = MemoryHierarchy::default();
        let out = nested
            .translate(&pm, &mut hier, VirtAddr(0x7f00_0000_0000 + 7 * 4096), |gpa| {
                Some(PhysAddr(gpa.raw() + OFF))
            })
            .unwrap();
        assert_eq!(out.seq_refs(), 3, "Nested ECPT: three sequential steps");
        assert!(out.parallel_refs() <= 81 + 9 + 9);
        assert!(out.parallel_refs() >= 27, "parallel: {}", out.parallel_refs());
        assert_eq!(out.pa, PhysAddr(((100 + 7) << 12) + OFF));
    }
}
