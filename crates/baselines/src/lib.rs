//! The four comparison translation designs the paper evaluates against
//! DMT (§6.2): Elastic Cuckoo Page Tables ([`ecpt`]), Flattened Page
//! Tables ([`fpt`]), Agile Paging ([`agile`]) and the ASAP PTE
//! prefetcher ([`asap`]). Each is implemented over the same physical
//! memory, cache hierarchy and page-size model as DMT itself, so
//! Figure 14/15's comparisons are apples-to-apples.

pub mod agile;
pub mod asap;
pub mod ecpt;
pub mod fpt;

pub use agile::{agile_sync_events, agile_walk, AgileOutcome};
pub use asap::{AsapPrefetcher, AsapStats};
pub use ecpt::{Ecpt, EcptOutcome, NestedEcpt};
pub use fpt::{FlatPageTable, FptOutcome};

use core::fmt;
use dmt_mem::MemError;
use dmt_pgtable::PtError;

/// Errors from the baseline designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BaselineError {
    /// No translation found.
    NotMapped {
        /// The address.
        va: u64,
    },
    /// A cuckoo table could not place an entry even after resizing.
    EcptFull,
    /// Underlying memory failure.
    Mem(MemError),
    /// Underlying page-table failure.
    Pt(PtError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::NotMapped { va } => write!(f, "address {va:#x} not mapped"),
            BaselineError::EcptFull => write!(f, "cuckoo table insertion failed after resize"),
            BaselineError::Mem(e) => write!(f, "memory error: {e}"),
            BaselineError::Pt(e) => write!(f, "page-table error: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Mem(e) => Some(e),
            BaselineError::Pt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for BaselineError {
    fn from(e: MemError) -> Self {
        BaselineError::Mem(e)
    }
}

impl From<PtError> for BaselineError {
    fn from(e: PtError) -> Self {
        BaselineError::Pt(e)
    }
}

#[cfg(test)]
mod proptests {
    use crate::ecpt::Ecpt;
    use crate::fpt::FlatPageTable;
    use dmt_cache::hierarchy::MemoryHierarchy;
    use dmt_mem::buddy::FrameKind;
    use dmt_mem::{PageSize, PhysAddr, PhysMemory, VirtAddr};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// ECPT: any set of disjoint 4 KiB mappings — including ones that
        /// force kicks and elastic resizes — translates back exactly.
        #[test]
        fn ecpt_roundtrip(pages in prop::collection::btree_set(0u64..100_000, 1..400)) {
            let mut pm = PhysMemory::new_bytes(256 << 20);
            let mut ecpt = Ecpt::new(&mut pm, 64).unwrap(); // tiny: resizes
            let mut hier = MemoryHierarchy::default();
            for &p in &pages {
                ecpt.map(
                    &mut pm,
                    VirtAddr(p << 12),
                    PhysAddr((p + 1_000_000) << 12),
                    PageSize::Size4K,
                ).unwrap();
            }
            for &p in &pages {
                let out = ecpt
                    .translate(&pm, &mut hier, VirtAddr((p << 12) + 0x21))
                    .unwrap();
                prop_assert_eq!(out.pa, PhysAddr(((p + 1_000_000) << 12) + 0x21));
                prop_assert_eq!(out.seq_refs(), 1);
            }
        }

        /// FPT: mixed 4 KiB / 2 MiB mappings in separate 1 GiB regions
        /// translate back exactly in ≤ 3 fetches.
        #[test]
        fn fpt_roundtrip(
            small in prop::collection::btree_set(0u64..10_000, 1..100),
            huge in prop::collection::btree_set(0u64..64, 0..16),
        ) {
            let mut pm = PhysMemory::new_bytes(256 << 20);
            let mut fpt = FlatPageTable::new_host(&mut pm).unwrap();
            let mut hier = MemoryHierarchy::default();
            let alloc = |pm: &mut PhysMemory, f: u64| pm.alloc_contig(f, FrameKind::PageTable);
            // 4 KiB pages in region 0, 2 MiB pages in region 1.
            for &p in &small {
                fpt.map(&mut pm, VirtAddr(p << 12), PhysAddr((p + 50_000) << 12),
                        PageSize::Size4K, alloc).unwrap();
            }
            for &h in &huge {
                fpt.map(&mut pm, VirtAddr((1 << 30) + (h << 21)),
                        PhysAddr((h + 100) << 21), PageSize::Size2M, alloc).unwrap();
            }
            for &p in &small {
                let out = fpt.translate(&pm, &mut hier, VirtAddr((p << 12) + 5)).unwrap();
                prop_assert_eq!(out.pa, PhysAddr(((p + 50_000) << 12) + 5));
                prop_assert!(out.refs() <= 2);
            }
            for &h in &huge {
                let va = VirtAddr((1 << 30) + (h << 21) + 0x1234);
                let out = fpt.translate(&pm, &mut hier, va).unwrap();
                prop_assert_eq!(out.pa, PhysAddr(((h + 100) << 21) + 0x1234));
                prop_assert_eq!(out.size, PageSize::Size2M);
                prop_assert!(out.refs() <= 3);
            }
        }
    }
}
