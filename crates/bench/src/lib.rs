//! Shared plumbing for the figure/table benchmarks.
//!
//! Every bench target regenerates one table or figure of the paper
//! (printed before the criterion timings) and then times a representative
//! translation kernel with criterion. `DMT_FULL=1` switches the printed
//! experiment to the paper-regime scale used for EXPERIMENTS.md (slower).

pub mod harness;
pub mod shards;

use dmt_sim::experiments::Scale;

/// The experiment scale for printed tables: `DMT_FULL=1` selects the
/// paper-regime scale, otherwise the reduced test scale.
pub fn bench_scale() -> Scale {
    if std::env::var("DMT_FULL").as_deref() == Ok("1") {
        Scale::default()
    } else {
        Scale::test()
    }
}

/// Print a figure's per-design geomeans compactly.
pub fn print_geomeans(fig: &dmt_sim::experiments::FigureData, designs: &[dmt_sim::rig::Design]) {
    for (thp, _) in &fig.modes {
        for d in designs {
            if let Some((pw, app)) = fig.geomeans(*thp, *d) {
                println!(
                    "{} [{}] {:>7}: page-walk {pw:.2}x  app {app:.2}x",
                    fig.label,
                    if *thp { "THP" } else { "4KB" },
                    d.name()
                );
            }
        }
    }
}
