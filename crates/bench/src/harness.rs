//! The batched-engine perf harness (the `perf_harness` binary).
//!
//! Drives the [`Runner`] over a fixed (environment × design × benchmark)
//! slice twice per cell — once with the scalar reference engine, once
//! with the batched fast path — asserting the two produce bit-identical
//! [`RunStats`] (the hard correctness gate) before reporting wall-clock
//! replay throughput, and replays once more under telemetry for the
//! walk/data latency percentiles. The report serializes as schema
//! `dmt-bench-v1` (`BENCH_10.json`): all simulation-derived fields are
//! deterministic; only the `*_ns`/throughput timing fields vary run to
//! run, which `tests/bench_harness.rs` pins.

use dmt_sim::engine::RunStats;
use dmt_sim::experiments::{scaled_benchmark, Scale};
use dmt_sim::report::Json;
use dmt_sim::rig::{Design, Env, Setup};
use dmt_sim::{Engine, Runner, SimError};
use std::time::Instant;

/// One harness cell: an (environment, design, benchmark) triple.
#[derive(Debug, Clone, Copy)]
pub struct HarnessCell {
    pub env: Env,
    pub design: Design,
    /// Benchmark index in paper order.
    pub bench: usize,
}

/// The fixed slice the harness sweeps: GUPS (the TLB-thrashing
/// random-access kernel — the regime batching targets) across the
/// native and single-level-virtualized baselines, DMT, and the
/// beyond-the-paper non-radix designs (VBI, Seg).
pub fn harness_cells() -> Vec<HarnessCell> {
    const GUPS: usize = 2;
    vec![
        HarnessCell { env: Env::Native, design: Design::Vanilla, bench: GUPS },
        HarnessCell { env: Env::Native, design: Design::Dmt, bench: GUPS },
        HarnessCell { env: Env::Virt, design: Design::Vanilla, bench: GUPS },
        HarnessCell { env: Env::Virt, design: Design::Dmt, bench: GUPS },
        HarnessCell { env: Env::Native, design: Design::Vbi, bench: GUPS },
        HarnessCell { env: Env::Virt, design: Design::Vbi, bench: GUPS },
        HarnessCell { env: Env::Native, design: Design::Seg, bench: GUPS },
        HarnessCell { env: Env::Virt, design: Design::Seg, bench: GUPS },
    ]
}

/// One cell's measured result. Everything except the `*_ns` timings is
/// a pure function of the cell and scale.
#[derive(Debug, Clone)]
pub struct CellResult {
    pub env: Env,
    pub design: Design,
    pub workload: String,
    /// Engine statistics — identical between scalar and batched runs
    /// (asserted before timing is reported).
    pub stats: RunStats,
    /// Total trace length replayed (warmup + measured).
    pub replayed: u64,
    /// Best-of-repeats wall time for the scalar reference engine.
    pub scalar_ns: u64,
    /// Best-of-repeats wall time for the batched engine.
    pub batched_ns: u64,
    pub walk_p50: u64,
    pub walk_p99: u64,
    pub data_p50: u64,
    pub data_p99: u64,
}

impl CellResult {
    /// Batched-over-scalar replay speedup.
    pub fn speedup(&self) -> f64 {
        self.scalar_ns as f64 / self.batched_ns as f64
    }

    fn ns_per_access(&self, ns: u64) -> f64 {
        ns as f64 / self.replayed as f64
    }

    fn accesses_per_sec(&self, ns: u64) -> f64 {
        self.replayed as f64 * 1e9 / ns as f64
    }
}

/// Time `repeats` fresh-rig replays under `runner`, returning the
/// stats (identical across repeats — the engine is deterministic) and
/// the best wall time.
fn time_replays(
    runner: &Runner,
    cell: HarnessCell,
    setup: &Setup,
    trace: &[dmt_workloads::gen::Access],
    warmup: usize,
    repeats: usize,
) -> Result<(RunStats, u64), SimError> {
    let mut best = u64::MAX;
    let mut stats = None;
    for _ in 0..repeats.max(1) {
        let mut rig = runner.build_rig(cell.env, cell.design, false, setup)?;
        let t0 = Instant::now();
        let (s, _) = runner.replay(rig.as_mut(), trace, warmup);
        let ns = t0.elapsed().as_nanos() as u64;
        best = best.min(ns.max(1));
        if let Some(prev) = stats {
            if prev != s {
                return Err(SimError::Setup(format!(
                    "nondeterministic replay in {:?}/{:?}",
                    cell.env, cell.design
                )));
            }
        }
        stats = Some(s);
    }
    Ok((stats.expect("at least one repeat"), best))
}

/// Run one cell: scalar and batched timed replays (bit-identity
/// asserted), plus a telemetry replay for the latency percentiles.
///
/// # Errors
///
/// Rig construction failures, and [`SimError::Setup`] if the batched
/// engine diverges from the scalar reference — the harness's hard gate.
pub fn run_cell(cell: HarnessCell, scale: Scale, repeats: usize) -> Result<CellResult, SimError> {
    let w = scaled_benchmark(cell.bench, scale, false).ok_or(SimError::BenchIndex {
        index: cell.bench,
        count: dmt_workloads::bench7::BENCH7_COUNT,
    })?;
    let trace = w.trace(scale.total(), 0xD317 ^ cell.design as u64);
    let setup = Setup::of_workload(w.as_ref(), &trace);

    let scalar = Runner::builder().engine(Engine::Scalar).build();
    let batched = Runner::builder().build();
    let (s_stats, scalar_ns) = time_replays(&scalar, cell, &setup, &trace, scale.warmup, repeats)?;
    let (b_stats, batched_ns) = time_replays(&batched, cell, &setup, &trace, scale.warmup, repeats)?;
    if s_stats != b_stats {
        return Err(SimError::Setup(format!(
            "batched engine diverged from scalar in {}/{}: {:?} vs {:?}",
            cell.env.name(),
            cell.design.name(),
            b_stats,
            s_stats
        )));
    }

    let mut rig = Runner::builder()
        .telemetry(true)
        .build()
        .build_rig(cell.env, cell.design, false, &setup)?;
    let (t_stats, telemetry) = Runner::builder().telemetry(true).build().replay(
        rig.as_mut(),
        &trace,
        scale.warmup,
    );
    if t_stats != b_stats {
        return Err(SimError::Setup(format!(
            "telemetry replay perturbed {}/{}",
            cell.env.name(),
            cell.design.name()
        )));
    }
    let t = telemetry.expect("telemetry runner captures");

    Ok(CellResult {
        env: cell.env,
        design: cell.design,
        workload: w.name().to_string(),
        stats: b_stats,
        replayed: scale.total() as u64,
        scalar_ns,
        batched_ns,
        walk_p50: t.walk_latency.quantile(0.5),
        walk_p99: t.walk_latency.quantile(0.99),
        data_p50: t.data_latency.quantile(0.5),
        data_p99: t.data_latency.quantile(0.99),
    })
}

/// Run every [`harness_cells`] cell at `scale`.
///
/// # Errors
///
/// The first failing cell's error (see [`run_cell`]).
pub fn run_harness(scale: Scale, repeats: usize) -> Result<Vec<CellResult>, SimError> {
    harness_cells()
        .into_iter()
        .map(|c| run_cell(c, scale, repeats))
        .collect()
}

fn engine_json(r: &CellResult, ns: u64) -> Json {
    Json::obj()
        .set("ns_total", Json::U64(ns))
        .set("ns_per_access", Json::F64(r.ns_per_access(ns)))
        .set("accesses_per_sec", Json::F64(r.accesses_per_sec(ns)))
}

/// Render the harness results as schema `dmt-bench-v1`.
pub fn report_json(results: &[CellResult], scale: Scale, commit: &str) -> Json {
    Json::obj()
        .set("schema", Json::Str("dmt-bench-v1".into()))
        .set("commit", Json::Str(commit.into()))
        .set(
            "scale",
            Json::obj()
                .set("mult4k", Json::U64(scale.mult4k))
                .set("thp_mult", Json::U64(scale.thp_mult))
                .set("trace", Json::U64(scale.trace as u64))
                .set("warmup", Json::U64(scale.warmup as u64)),
        )
        .set(
            "cells",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .set("env", Json::Str(r.env.name().into()))
                            .set("design", Json::Str(r.design.name().into()))
                            .set("workload", Json::Str(r.workload.clone()))
                            .set("replayed", Json::U64(r.replayed))
                            .set("accesses", Json::U64(r.stats.accesses))
                            .set("walks", Json::U64(r.stats.walks))
                            .set("scalar", engine_json(r, r.scalar_ns))
                            .set("batched", engine_json(r, r.batched_ns))
                            .set("speedup", Json::F64(r.speedup()))
                            .set(
                                "percentiles",
                                Json::obj()
                                    .set("walk_p50", Json::U64(r.walk_p50))
                                    .set("walk_p99", Json::U64(r.walk_p99))
                                    .set("data_p50", Json::U64(r.data_p50))
                                    .set("data_p99", Json::U64(r.data_p99)),
                            )
                    })
                    .collect(),
            ),
        )
}

/// `(env, design, speedup)` rows scraped from a committed
/// `dmt-bench-v1` report — the regression-gate baseline. The scraper
/// leans on our own serializer's stable field order (`env`, `design`,
/// ..., `speedup` within each cell) instead of pulling in a JSON
/// parser.
pub fn baseline_speedups(json: &str) -> Vec<(String, String, f64)> {
    fn field<'a>(rest: &'a str, key: &str) -> Option<(&'a str, &'a str)> {
        let i = rest.find(key)? + key.len();
        let rest = &rest[i..];
        let end = rest.find(['"', ',', '\n', '}'])?;
        Some((rest[..end].trim(), &rest[end..]))
    }
    let mut out = Vec::new();
    let mut rest = json;
    while let Some((env, r)) = field(rest, "\"env\": \"") {
        let Some((design, r)) = field(r, "\"design\": \"") else { break };
        let Some((speedup, r)) = field(r, "\"speedup\": ") else { break };
        if let Ok(v) = speedup.parse::<f64>() {
            out.push((env.to_string(), design.to_string(), v));
        }
        rest = r;
    }
    out
}

/// The CI regression gate: every DMT cell's batched-over-scalar ratio
/// must reach `tolerance ×` the committed baseline's ratio for the same
/// `(env, design)`. The default tolerance sits well below 1.0 because
/// shared CI runners make absolute timings noisy — the gate catches a
/// collapsed fast path, not a few percent of jitter.
///
/// # Errors
///
/// [`SimError::Setup`] naming the first regressed cell.
pub fn check_dmt_regression(
    results: &[CellResult],
    baseline: &str,
    tolerance: f64,
) -> Result<(), SimError> {
    let base = baseline_speedups(baseline);
    for r in results {
        if r.design != Design::Dmt {
            continue;
        }
        let Some((_, _, was)) = base
            .iter()
            .find(|(e, d, _)| e == r.env.name() && d == r.design.name())
        else {
            continue;
        };
        let now = r.speedup();
        if now < was * tolerance {
            return Err(SimError::Setup(format!(
                "batch ratio regressed in {}/{}: {now:.2}x vs committed {was:.2}x (floor {:.2}x)",
                r.env.name(),
                r.design.name(),
                was * tolerance
            )));
        }
    }
    Ok(())
}

/// The current git commit, or `"unknown"` outside a repository.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}
