//! Measure the batched engine against the scalar reference and record
//! the trajectory: replays the harness slice (see
//! [`dmt_bench::harness`]), prints a per-cell summary, and writes
//! `BENCH_10.json` (schema `dmt-bench-v1`) into the output directory
//! (first CLI argument, default the current directory).
//!
//! `DMT_FULL=1` runs the paper-regime scale; the default is the reduced
//! test scale CI uses.

use dmt_bench::harness::{check_dmt_regression, git_commit, report_json, run_harness};

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| ".".to_string());
    let scale = dmt_bench::bench_scale();
    let repeats = 3;
    let results = match run_harness(scale, repeats) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf_harness: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "perf_harness: {} accesses/cell ({} warmup), best of {repeats}",
        scale.total(),
        scale.warmup
    );
    for r in &results {
        println!(
            "{:>11}/{:<7} {:>6}: scalar {:>8.1} ns/acc, batched {:>8.1} ns/acc — {:.2}x",
            r.env.name(),
            r.design.name(),
            r.workload,
            r.scalar_ns as f64 / r.replayed as f64,
            r.batched_ns as f64 / r.replayed as f64,
            r.speedup()
        );
    }
    let json = report_json(&results, scale, &git_commit());
    match json.write_json_in(std::path::Path::new(&out_dir), "BENCH_10") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("perf_harness: writing BENCH_10.json: {e}");
            std::process::exit(1);
        }
    }

    // Regression gate: the DMT cells' batch ratios must not collapse
    // below the committed baseline trajectory (tolerance is deliberately
    // loose — CI timings are noisy; see DESIGN.md §13).
    let baseline = std::env::var("DMT_BENCH_BASELINE").unwrap_or_else(|_| "BENCH_7.json".into());
    let tolerance: f64 = std::env::var("DMT_BENCH_TOLERANCE")
        .ok()
        .and_then(|t| t.parse().ok())
        .unwrap_or(0.6);
    match std::fs::read_to_string(&baseline) {
        Ok(text) => match check_dmt_regression(&results, &text, tolerance) {
            Ok(()) => println!("regression gate vs {baseline}: ok (floor {tolerance}x of baseline)"),
            Err(e) => {
                eprintln!("perf_harness: {e}");
                std::process::exit(1);
            }
        },
        Err(_) => eprintln!("perf_harness: no baseline at {baseline}; skipping regression gate"),
    }
}
