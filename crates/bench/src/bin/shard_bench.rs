//! Measure sharded replay against the serial epoch-barrier reference
//! and record the trajectory: captures one large seekable trace,
//! replays it at 1/2/4/8 shards per cell (bit-identity gated — see
//! [`dmt_bench::shards`]), prints a per-cell summary, and writes
//! `BENCH_8.json` (schema `dmt-bench-v1`) into the output directory
//! (first CLI argument, default the current directory).
//!
//! `DMT_FULL=1` runs the paper-regime scale; the default is the reduced
//! test scale CI uses. Shard *scaling* only shows up on multi-core
//! hosts — the report's `host_threads` field says what this run had.

use dmt_bench::harness::git_commit;
use dmt_bench::shards::{run_shard_bench, shard_report_json, ShardScale};

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let scale = ShardScale::from_env();
    let repeats = 3;
    let (results, scale) = match run_shard_bench(scale, repeats) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("shard_bench: {e}");
            std::process::exit(1);
        }
    };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "shard_bench: {} accesses ({} warmup), best of {repeats}, {host_threads} host thread(s)",
        scale.accesses, scale.warmup
    );
    for r in &results {
        let line: Vec<String> = r
            .timings
            .iter()
            .map(|t| {
                format!(
                    "K={}: {:.1} ns/acc ({:.2}x)",
                    t.shards,
                    t.best_ns as f64 / scale.accesses as f64,
                    r.speedup_at(t.shards).unwrap_or(1.0)
                )
            })
            .collect();
        println!(
            "{:>7}/{:<7} {:>6}: {}",
            r.env.name(),
            r.design.name(),
            r.workload,
            line.join("  ")
        );
    }
    let json = shard_report_json(&results, scale, &git_commit());
    match json.write_json_in(std::path::Path::new(&out_dir), "BENCH_8") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("shard_bench: writing BENCH_8.json: {e}");
            std::process::exit(1);
        }
    }
}
