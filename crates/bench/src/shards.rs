//! The sharded-replay perf harness (the `shard_bench` binary).
//!
//! One large seekable (v2) GUPS trace is captured to disk once, then
//! replayed through [`Runner::replay_sharded`] at 1/2/4/8 shards for a
//! pair of native cells. Before any timing, each shard count's merged
//! [`RunStats`] are checked bit-identical to the serial epoch-barrier
//! reference ([`Runner::replay_epochs_serial`]) — the same gate the
//! property suite enforces, here as a hard precondition of reporting
//! numbers at all. The report serializes as schema `dmt-bench-v1`
//! (`BENCH_8.json`); it records `host_threads` because shard scaling is
//! meaningless without knowing how many cores the host could actually
//! run workers on (a 1-core host replays K shards sequentially).

use dmt_sim::engine::RunStats;
use dmt_sim::report::Json;
use dmt_sim::rig::{Design, Env, Setup};
use dmt_sim::shard::ShardSource;
use dmt_sim::{Runner, SimError};
use dmt_trace::TraceFile;
use dmt_workloads::bench7::Gups;
use dmt_workloads::gen::Workload;
use std::time::Instant;

/// Scale of the sharded-replay measurement.
#[derive(Debug, Clone, Copy)]
pub struct ShardScale {
    /// Total accesses in the captured trace.
    pub accesses: usize,
    /// Unmeasured warmup prefix.
    pub warmup: usize,
    /// GUPS table footprint in bytes.
    pub table_bytes: u64,
}

impl ShardScale {
    /// Paper-regime scale (`DMT_FULL=1`).
    pub fn full() -> ShardScale {
        ShardScale {
            accesses: 2_000_000,
            warmup: 100_000,
            table_bytes: 160 << 20,
        }
    }

    /// Reduced CI/test scale.
    pub fn test() -> ShardScale {
        ShardScale {
            accesses: 40_000,
            warmup: 4_000,
            table_bytes: 160 << 20,
        }
    }

    /// `DMT_FULL=1` selects [`ShardScale::full`], otherwise
    /// [`ShardScale::test`] — same convention as [`crate::bench_scale`].
    pub fn from_env() -> ShardScale {
        if std::env::var("DMT_FULL").as_deref() == Ok("1") {
            ShardScale::full()
        } else {
            ShardScale::test()
        }
    }
}

/// Chunk length of the captured trace; the bench replays on the same
/// grid (`epoch_len == chunk_len`) so every shard count is file-alignable.
pub const SHARD_BENCH_CHUNK_LEN: u64 = 4_096;

/// The shard counts the bench sweeps.
pub fn shard_counts() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

/// The native cells the bench times.
pub fn shard_cells() -> Vec<(Env, Design)> {
    vec![(Env::Native, Design::Vanilla), (Env::Native, Design::Dmt)]
}

/// One (cell, shard count) timing.
#[derive(Debug, Clone, Copy)]
pub struct ShardTiming {
    /// Requested shard count.
    pub shards: usize,
    /// Shards the plan actually produced (collapses for short traces).
    pub planned: usize,
    /// Best-of-repeats wall time for the sharded replay.
    pub best_ns: u64,
    /// Replayed accesses per host second at `best_ns`.
    pub accesses_per_sec: f64,
}

/// One cell's results: the serial reference plus every shard count.
#[derive(Debug, Clone)]
pub struct ShardCellResult {
    pub env: Env,
    pub design: Design,
    pub workload: String,
    /// Serial epoch-barrier reference stats — every shard count matched
    /// these bit-for-bit before timing was recorded.
    pub stats: RunStats,
    /// Best-of-repeats wall time for the serial reference.
    pub serial_ns: u64,
    pub timings: Vec<ShardTiming>,
}

impl ShardCellResult {
    /// Speedup of `k`-shard replay over 1-shard replay, if both were
    /// measured.
    pub fn speedup_at(&self, k: usize) -> Option<f64> {
        let one = self.timings.iter().find(|t| t.shards == 1)?;
        let at = self.timings.iter().find(|t| t.shards == k)?;
        Some(one.best_ns as f64 / at.best_ns as f64)
    }
}

fn time_serial(
    runner: &Runner,
    env: Env,
    design: Design,
    setup: &Setup,
    f: &TraceFile,
    warmup: usize,
    repeats: usize,
) -> Result<(RunStats, u64), SimError> {
    let mut best = u64::MAX;
    let mut stats = None;
    for _ in 0..repeats.max(1) {
        let mut rig = runner.build_rig(env, design, false, setup)?;
        let t0 = Instant::now();
        let (s, _) = runner.replay_epochs_serial(rig.as_mut(), ShardSource::File(f), warmup, 0)?;
        best = best.min(t0.elapsed().as_nanos().max(1) as u64);
        if let Some(prev) = stats {
            if prev != s {
                return Err(SimError::Setup(format!(
                    "nondeterministic serial replay in {}/{}",
                    env.name(),
                    design.name()
                )));
            }
        }
        stats = Some(s);
    }
    Ok((stats.expect("at least one repeat"), best))
}

/// Run one cell: serial reference, then each shard count with the
/// bit-identity gate applied to **every** timed repeat.
///
/// # Errors
///
/// Rig construction and trace decode failures, and [`SimError::Setup`]
/// if any sharded replay diverges from the serial reference.
pub fn run_shard_cell(
    env: Env,
    design: Design,
    workload: &str,
    setup: &Setup,
    f: &TraceFile,
    warmup: usize,
    repeats: usize,
) -> Result<ShardCellResult, SimError> {
    let epoch_len = SHARD_BENCH_CHUNK_LEN as usize;
    let serial_runner = Runner::builder().epoch_len(epoch_len).build();
    let (stats, serial_ns) =
        time_serial(&serial_runner, env, design, setup, f, warmup, repeats)?;

    let mut timings = Vec::new();
    for k in shard_counts() {
        let runner = Runner::builder().epoch_len(epoch_len).shards(k).build();
        let mut best = u64::MAX;
        let mut planned = 0;
        for _ in 0..repeats.max(1) {
            let t0 = Instant::now();
            let out = runner.replay_sharded(
                env,
                design,
                false,
                setup,
                ShardSource::File(f),
                warmup,
                0,
            )?;
            let ns = t0.elapsed().as_nanos().max(1) as u64;
            if out.stats != stats {
                return Err(SimError::Setup(format!(
                    "{k}-shard replay diverged from the serial reference in {}/{}: {:?} vs {:?}",
                    env.name(),
                    design.name(),
                    out.stats,
                    stats
                )));
            }
            best = best.min(ns);
            planned = out.shards;
        }
        timings.push(ShardTiming {
            shards: k,
            planned,
            best_ns: best,
            accesses_per_sec: f.len() as f64 * 1e9 / best as f64,
        });
    }
    Ok(ShardCellResult {
        env,
        design,
        workload: workload.to_string(),
        stats,
        serial_ns,
        timings,
    })
}

/// Capture the bench trace (seekable v2) and run every cell.
///
/// # Errors
///
/// Capture/decode failures and the first failing cell's error.
pub fn run_shard_bench(
    scale: ShardScale,
    repeats: usize,
) -> Result<(Vec<ShardCellResult>, ShardScale), SimError> {
    let w = Gups {
        table_bytes: scale.table_bytes,
    };
    let seed = 0xD317u64 ^ 8;
    let trace = w.trace(scale.accesses, seed);
    let setup = Setup::of_workload(&w, &trace);
    drop(trace);

    let path = std::env::temp_dir().join(format!("dmt-shard-bench-{}.dmtt", std::process::id()));
    dmt_trace::capture_indexed_to_path(&w, scale.accesses, seed, SHARD_BENCH_CHUNK_LEN, &path)?;
    let f = TraceFile::open(&path)?;

    let mut results = Vec::new();
    for (env, design) in shard_cells() {
        results.push(run_shard_cell(
            env,
            design,
            w.name(),
            &setup,
            &f,
            scale.warmup,
            repeats,
        )?);
    }
    drop(f);
    std::fs::remove_file(&path).ok();
    Ok((results, scale))
}

/// Render the shard-bench results as schema `dmt-bench-v1`.
pub fn shard_report_json(results: &[ShardCellResult], scale: ShardScale, commit: &str) -> Json {
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    Json::obj()
        .set("schema", Json::Str("dmt-bench-v1".into()))
        .set("mode", Json::Str("sharded-replay".into()))
        .set("commit", Json::Str(commit.into()))
        .set("host_threads", Json::U64(host_threads as u64))
        .set(
            "scale",
            Json::obj()
                .set("accesses", Json::U64(scale.accesses as u64))
                .set("warmup", Json::U64(scale.warmup as u64))
                .set("table_bytes", Json::U64(scale.table_bytes))
                .set("chunk_len", Json::U64(SHARD_BENCH_CHUNK_LEN))
                .set("epoch_len", Json::U64(SHARD_BENCH_CHUNK_LEN)),
        )
        .set(
            "cells",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .set("env", Json::Str(r.env.name().into()))
                            .set("design", Json::Str(r.design.name().into()))
                            .set("workload", Json::Str(r.workload.clone()))
                            .set("accesses", Json::U64(r.stats.accesses))
                            .set("walks", Json::U64(r.stats.walks))
                            .set("serial_ns", Json::U64(r.serial_ns))
                            .set(
                                "shards",
                                Json::Arr(
                                    r.timings
                                        .iter()
                                        .map(|t| {
                                            Json::obj()
                                                .set("requested", Json::U64(t.shards as u64))
                                                .set("planned", Json::U64(t.planned as u64))
                                                .set("ns_total", Json::U64(t.best_ns))
                                                .set(
                                                    "accesses_per_sec",
                                                    Json::F64(t.accesses_per_sec),
                                                )
                                                .set(
                                                    "speedup_vs_1shard",
                                                    Json::F64(
                                                        r.speedup_at(t.shards).unwrap_or(1.0),
                                                    ),
                                                )
                                        })
                                        .collect(),
                                ),
                            )
                    })
                    .collect(),
            ),
        )
}
