//! Ablations of DMT's design choices: register count, clustering bubble
//! threshold, register-selection policy, eager TEA allocation; criterion
//! times the register-file comparator path (the per-TLB-miss hardware
//! check).

use criterion::{criterion_group, criterion_main, Criterion};
use dmt_core::regfile::DmtRegisterFile;
use dmt_core::vtmap::VmaTeaMapping;
use dmt_mem::{PageSize, Pfn, VirtAddr};
use dmt_sim::ablation::{policy_comparison, register_sweep, threshold_sweep};
use dmt_sim::overheads::memory_overhead;
use dmt_workloads::bench7::Memcached;
use dmt_workloads::vma_profile::benchmark_layouts;

fn print_ablations() {
    let w = Memcached::default();
    println!("\nAblation — registers vs coverage (Memcached):");
    for p in register_sweep(&w, &[1, 2, 4, 8, 16, 32], 20_000) {
        println!("  {:>2} registers -> {:>6.2}% coverage", p.registers, p.coverage * 100.0);
    }
    let layout = benchmark_layouts().into_iter().find(|l| l.name == "Memcached").unwrap();
    println!("Ablation — bubble threshold (Memcached layout):");
    for p in threshold_sweep(&layout, &[0.0, 0.005, 0.01, 0.02, 0.05, 0.10]) {
        println!(
            "  t={:>4.1}% -> {:>4} clusters, {:>8} wasted TEA bytes, {:>3} regs for 99%",
            p.threshold * 100.0,
            p.clusters,
            p.wasted_tea_bytes,
            p.registers_for_99
        );
    }
    let pol = policy_comparison(&w, 20_000);
    println!(
        "Ablation — policy: largest-first {:.2}% vs hottest-first {:.2}% miss coverage",
        pol.largest_first * 100.0,
        pol.hottest_first * 100.0
    );
    let eager = memory_overhead(512, 5).unwrap();
    println!(
        "Ablation — eager TEA on sparse mmap (5% touched): DMT {} KiB vs lazy {} KiB\n",
        eager.dmt_bytes >> 10,
        eager.vanilla_bytes >> 10
    );
}

fn bench(c: &mut Criterion) {
    print_ablations();
    // The hardware-relevant kernel: 16-register comparator lookup.
    let mut rf = DmtRegisterFile::new();
    let mappings: Vec<VmaTeaMapping> = (0..16)
        .map(|i| {
            VmaTeaMapping::new(
                VirtAddr((i as u64 + 1) << 32),
                64 << 20,
                PageSize::Size4K,
                Pfn(i as u64 * 1000),
            )
        })
        .collect();
    rf.load(&mappings);
    let mut i = 0u64;
    c.bench_function("regfile_lookup_16", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9);
            let va = VirtAddr(((i % 16) + 1) << 32 | (i & 0x3f_ffff));
            std::hint::black_box(rf.lookup(va).next())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
