//! Figure 15 — virtualized page-walk and application speedups of FPT /
//! ECPT / Agile / ASAP / DMT / pvDMT over vanilla KVM, 4 KiB and THP.

use criterion::{criterion_group, criterion_main, Criterion};
use dmt_bench::{bench_scale, print_geomeans};
use dmt_sim::experiments::fig15;
use dmt_sim::runner::Runner;
use dmt_sim::virt_rig::VirtRig;
use dmt_sim::rig::{Design, Rig};
use dmt_cache::hierarchy::MemoryHierarchy;
use dmt_workloads::bench7::Redis;
use dmt_workloads::gen::Workload;

fn bench(c: &mut Criterion) {
    let fig = fig15(bench_scale()).unwrap();
    print_geomeans(
        &fig,
        &[Design::Fpt, Design::Ecpt, Design::Agile, Design::Asap, Design::Dmt, Design::PvDmt],
    );
    let w = Redis {
        records: 1 << 18,
        ..Redis::default()
    };
    let trace = w.trace(6_000, 3);
    let mut group = c.benchmark_group("virt_translate_redis");
    group.sample_size(20);
    for design in [Design::Vanilla, Design::Agile, Design::Asap, Design::Dmt, Design::PvDmt] {
        let mut rig = VirtRig::new(design, false, &w, &trace).unwrap();
        Runner::builder().build().replay(&mut rig, &trace, 0);
        let mut hier = MemoryHierarchy::default();
        let mut i = 0usize;
        group.bench_function(design.name(), |b| {
            b.iter(|| {
                let a = &trace[i % trace.len()];
                i += 7;
                std::hint::black_box(rig.translate(a.va, &mut hier))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
