//! Table 6 — sequential memory references per design, plus criterion
//! timings of the single-translation hot path of each design on a warm
//! virtualized machine.

use criterion::{criterion_group, criterion_main, Criterion};
use dmt_sim::runner::Runner;
use dmt_sim::rig::{Design, Env, Rig};
use dmt_sim::virt_rig::VirtRig;
use dmt_sim::experiments::table6;
use dmt_cache::hierarchy::MemoryHierarchy;
use dmt_workloads::bench7::Gups;
use dmt_workloads::gen::Workload;

fn print_table6() {
    println!("\nTable 6 — sequential memory references");
    println!("{:<10} {:>8} {:>12} {:>12}", "design", "native", "virtualized", "nested");
    for (d, n, v, nn) in table6() {
        let f = |x: Option<u64>| x.map(|v| v.to_string()).unwrap_or_else(|| "N/A".into());
        println!("{:<10} {:>8} {:>12} {:>12}", d.name(), f(n), f(v), f(nn));
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table6();
    let w = Gups {
        table_bytes: 64 << 20,
    };
    let trace = w.trace(6_000, 3);
    let mut group = c.benchmark_group("virt_translate");
    group.sample_size(20);
    for design in [Design::Vanilla, Design::Fpt, Design::Ecpt, Design::Dmt, Design::PvDmt] {
        let mut rig = VirtRig::new(design, false, &w, &trace).unwrap();
        // Warm all structures.
        Runner::builder().build().replay(&mut rig, &trace, 0);
        assert!(design.available_in(Env::Virt));
        let mut hier = MemoryHierarchy::default();
        let mut i = 0usize;
        group.bench_function(design.name(), |b| {
            b.iter(|| {
                let a = &trace[i % trace.len()];
                i += 7;
                std::hint::black_box(rig.translate(a.va, &mut hier))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
