//! Figure 4 — execution time across native / virtualized (nPT and sPT) /
//! nested environments, plus criterion timing of the three baseline walk
//! paths.

use criterion::{criterion_group, criterion_main, Criterion};
use dmt_bench::bench_scale;
use dmt_sim::experiments::fig4;
use dmt_sim::runner::Runner;
use dmt_sim::native_rig::NativeRig;
use dmt_sim::nested_rig::NestedRig;
use dmt_sim::virt_rig::VirtRig;
use dmt_sim::rig::{Design, Rig};
use dmt_cache::hierarchy::MemoryHierarchy;
use dmt_workloads::bench7::Gups;
use dmt_workloads::gen::Workload;

fn print_fig4() {
    let rows = fig4(bench_scale()).unwrap();
    println!("\nFigure 4 — normalized execution time (page-walk fraction)");
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>14}",
        "workload", "native", "virt nPT", "virt sPT", "nested"
    );
    for r in rows {
        let f = |(t, p): (f64, f64)| format!("{t:.2} ({:.0}%)", p * 100.0);
        println!(
            "{:<12} {:>14} {:>14} {:>14} {:>14}",
            r.workload,
            f(r.native),
            f(r.virt_npt),
            f(r.virt_spt),
            f(r.nested)
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_fig4();
    let w = Gups {
        table_bytes: 64 << 20,
    };
    let trace = w.trace(6_000, 3);
    let mut group = c.benchmark_group("baseline_walks");
    group.sample_size(20);
    {
        let mut rig = NativeRig::new(Design::Vanilla, false, &w, &trace).unwrap();
        Runner::builder().build().replay(&mut rig, &trace, 0);
        let mut hier = MemoryHierarchy::default();
        let mut i = 0usize;
        group.bench_function("native_radix", |b| {
            b.iter(|| {
                let a = &trace[i % trace.len()];
                i += 7;
                std::hint::black_box(rig.translate(a.va, &mut hier))
            })
        });
    }
    {
        let mut rig = VirtRig::new(Design::Vanilla, false, &w, &trace).unwrap();
        Runner::builder().build().replay(&mut rig, &trace, 0);
        let mut hier = MemoryHierarchy::default();
        let mut i = 0usize;
        group.bench_function("virt_2d_walk", |b| {
            b.iter(|| {
                let a = &trace[i % trace.len()];
                i += 7;
                std::hint::black_box(rig.translate(a.va, &mut hier))
            })
        });
    }
    {
        let mut rig = NestedRig::new(Design::Vanilla, false, &w, &trace).unwrap();
        Runner::builder().build().replay(&mut rig, &trace, 0);
        let mut hier = MemoryHierarchy::default();
        let mut i = 0usize;
        group.bench_function("nested_2d_over_spt", |b| {
            b.iter(|| {
                let a = &trace[i % trace.len()];
                i += 7;
                std::hint::black_box(rig.translate(a.va, &mut hier))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
