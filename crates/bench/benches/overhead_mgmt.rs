//! §6.3 — DMT's runtime overheads: TEA management under 0.99
//! fragmentation, hypercall latency vs TEA size, and page-table memory;
//! criterion times the TEA-allocation and hypercall paths directly.

use criterion::{criterion_group, criterion_main, Criterion};
use dmt_core::gtea::GteaTable;
use dmt_mem::buddy::FrameKind;
use dmt_mem::{PageSize, PhysMemory, VirtAddr};
use dmt_os::tea::TeaManager;
use dmt_sim::overheads::{hypercall_overhead, management_overhead, memory_overhead};
use dmt_virt::hypercall::{kvm_hc_alloc_tea, HypercallStats, TeaRequest};
use dmt_virt::Vm;

fn print_overheads() {
    let m = management_overhead(256).unwrap();
    println!(
        "\n§6.3 management under FMFI {:.3}: {:?} for {} TEAs ({} mappings, {} defrag moves)",
        m.frag_index, m.mgmt_time, m.teas_created, m.mappings, m.defrag_moves
    );
    for (nested, label) in [(false, "virt"), (true, "nested")] {
        for c in hypercall_overhead(&[50, 100, 200], nested).unwrap() {
            println!(
                "§6.3 hypercall [{label}]: {} MB -> alloc {:?} + fixed {} cycles ({} grants)",
                c.tea_mb, c.alloc_time, c.exit_cycles, c.grants
            );
        }
    }
    let mem = memory_overhead(512, 100).unwrap();
    println!(
        "§6.3 memory: DMT {} KiB vs vanilla {} KiB ({:+.2}%)",
        mem.dmt_bytes >> 10,
        mem.vanilla_bytes >> 10,
        mem.extra_fraction() * 100.0
    );
    println!();
}

fn bench(c: &mut Criterion) {
    print_overheads();
    c.bench_function("tea_create_delete_100_frames", |b| {
        let mut pm = PhysMemory::new_bytes(256 << 20);
        let mut mgr = TeaManager::new();
        b.iter(|| {
            let (tea, _) = mgr.create(&mut pm, 100).unwrap();
            mgr.delete(&mut pm, tea).unwrap();
        })
    });
    c.bench_function("kvm_hc_alloc_tea_50mb", |b| {
        b.iter_with_setup(
            || {
                let mut pm = PhysMemory::new_bytes(512 << 20);
                let vm = Vm::new(&mut pm, 32 << 20, PageSize::Size4K).unwrap();
                (pm, vm, GteaTable::new(), HypercallStats::default())
            },
            |(mut pm, mut vm, mut table, mut stats)| {
                std::hint::black_box(
                    kvm_hc_alloc_tea(
                        &mut pm,
                        &mut vm,
                        &mut table,
                        &[TeaRequest {
                            base: VirtAddr(0x10_0000_0000),
                            len: 50 << 20,
                            size: PageSize::Size4K,
                        }],
                        &mut stats,
                    )
                    .unwrap(),
                )
            },
        )
    });
    c.bench_function("contig_alloc_under_fragmentation", |b| {
        let mut pm = PhysMemory::new_bytes(128 << 20);
        let mut frag = dmt_mem::frag::Fragmenter::new();
        frag.fragment(pm.buddy_mut(), 0.30).unwrap();
        b.iter(|| {
            if let Ok(r) = dmt_mem::compact::make_contig(pm.buddy_mut(), 16, FrameKind::Tea) {
                pm.buddy_mut().free_contig(r.start, 16).unwrap();
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
