//! Table 5 — geomean page-walk speedups of DMT/pvDMT over the other
//! designs, derived from the Figure 14 and 15 runs.

use criterion::{criterion_group, criterion_main, Criterion};
use dmt_bench::bench_scale;
use dmt_sim::experiments::{fig14, fig15, table5};
use dmt_sim::rig::Design;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let f14 = fig14(scale).unwrap();
    let f15 = fig15(scale).unwrap();
    println!("\nTable 5 — DMT/pvDMT page-walk speedup over other designs");
    println!("{:<18} {:>7} {:>7} {:>7} {:>7}", "setting", "FPT", "ECPT", "Agile", "ASAP");
    for row in table5(&f14, &f15) {
        let get = |d: Design| {
            row.over
                .iter()
                .find(|(dd, _)| *dd == d)
                .map(|(_, s)| format!("{s:.2}x"))
                .unwrap_or_else(|| "N/A".into())
        };
        println!(
            "{:<18} {:>7} {:>7} {:>7} {:>7}",
            row.setting,
            get(Design::Fpt),
            get(Design::Ecpt),
            get(Design::Agile),
            get(Design::Asap)
        );
    }
    println!();
    // A token timing so criterion has something to chew on: the geomean
    // derivation itself.
    c.bench_function("table5_derive", |b| {
        b.iter(|| std::hint::black_box(table5(&f14, &f15)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
