//! Figure 16 — per-PTE breakdown of the nested walk vs pvDMT's two
//! fetches (Redis), plus criterion timing of the raw 2D walker against
//! the pvDMT fetcher.

use criterion::{criterion_group, criterion_main, Criterion};
use dmt_bench::bench_scale;
use dmt_sim::experiments::fig16;
use dmt_cache::hierarchy::MemoryHierarchy;
use dmt_mem::VirtAddr;
use dmt_virt::machine::{GuestTeaMode, VirtMachine};

fn print_fig16() {
    for thp in [false, true] {
        let (vanilla, pvdmt) = fig16(thp, bench_scale()).unwrap();
        println!(
            "\nFigure 16 — Redis nested-walk breakdown ({})",
            if thp { "2M pages" } else { "4KB pages" }
        );
        for s in vanilla.iter().chain(pvdmt.iter()) {
            println!("  {:<10} {:>8.2} cyc  {:>5.1}%", s.label, s.avg_cycles, s.share * 100.0);
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_fig16();
    let mut m = VirtMachine::new(512 << 20, 64 << 20, GuestTeaMode::Pv, false).unwrap();
    let base = VirtAddr(0x7f00_0000_0000);
    m.guest_mmap(base, 16 << 20).unwrap();
    m.guest_populate_range(base, 16 << 20).unwrap();
    let mut hier = MemoryHierarchy::default();
    let mut i = 0u64;
    c.bench_function("nested_2d_walk", |b| {
        b.iter(|| {
            let va = VirtAddr(base.raw() + (i * 4096) % (16 << 20));
            i += 13;
            std::hint::black_box(m.translate_nested(va, &mut hier).unwrap())
        })
    });
    let mut i = 0u64;
    c.bench_function("pvdmt_fetch", |b| {
        b.iter(|| {
            let va = VirtAddr(base.raw() + (i * 4096) % (16 << 20));
            i += 13;
            std::hint::black_box(m.translate_pvdmt(va, &mut hier).unwrap())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
