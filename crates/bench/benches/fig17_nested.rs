//! Figure 17 — nested-virtualization speedups of pvDMT over the shadow
//! baseline, plus criterion timing of the L2 translation paths.

use criterion::{criterion_group, criterion_main, Criterion};
use dmt_bench::{bench_scale, print_geomeans};
use dmt_sim::experiments::fig17;
use dmt_sim::rig::Design;
use dmt_cache::hierarchy::MemoryHierarchy;
use dmt_mem::VirtAddr;
use dmt_virt::nested::NestedMachine;

fn bench(c: &mut Criterion) {
    let fig = fig17(bench_scale()).unwrap();
    print_geomeans(&fig, &[Design::PvDmt]);
    let mut m = NestedMachine::new(1 << 30, 256 << 20, 128 << 20, false).unwrap();
    let base = VirtAddr(0x7f00_0000_0000);
    m.l2_mmap(base, 16 << 20).unwrap();
    m.l2_populate_range(base, 16 << 20).unwrap();
    let mut hier = MemoryHierarchy::default();
    let mut i = 0u64;
    c.bench_function("nested_baseline_walk", |b| {
        b.iter(|| {
            let va = VirtAddr(base.raw() + (i * 4096) % (16 << 20));
            i += 13;
            std::hint::black_box(m.translate_baseline(va, &mut hier).unwrap())
        })
    });
    let mut i = 0u64;
    c.bench_function("nested_pvdmt_fetch", |b| {
        b.iter(|| {
            let va = VirtAddr(base.raw() + (i * 4096) % (16 << 20));
            i += 13;
            std::hint::black_box(m.translate_pvdmt(va, &mut hier).unwrap())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
