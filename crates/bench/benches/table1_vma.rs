//! Table 1 + Figure 5 — VMA characterization, plus criterion timing of
//! the clustering analysis itself (it runs on every mmap in DMT-Linux).

use criterion::{criterion_group, criterion_main, Criterion};
use dmt_os::mapping::cluster_spans;
use dmt_workloads::vma_profile::{
    benchmark_layouts, characterize, spec2006_layouts, spec2017_layouts,
};

fn print_tables() {
    println!("\nTable 1 — VMA characteristics (t = 2%)");
    println!("{:<12} {:>6} {:>9} {:>9}", "workload", "total", "99% cov", "clusters");
    for l in benchmark_layouts() {
        let c = characterize(&l, 0.02);
        println!("{:<12} {:>6} {:>9} {:>9}", l.name, c.total, c.cov99, c.clusters);
    }
    for (name, layouts) in [
        ("SPEC CPU 2006", spec2006_layouts(2006)),
        ("SPEC CPU 2017", spec2017_layouts(2017)),
    ] {
        let cs: Vec<_> = layouts.iter().map(|l| characterize(l, 0.02)).collect();
        let rng = |f: fn(&dmt_workloads::vma_profile::VmaCharacteristics) -> usize| {
            let mut v: Vec<usize> = cs.iter().map(f).collect();
            v.sort_unstable();
            format!("{}–{}", v[0], v[v.len() - 1])
        };
        println!(
            "{name}: total {}, 99% cov {}, clusters {}",
            rng(|c| c.total),
            rng(|c| c.cov99),
            rng(|c| c.clusters)
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_tables();
    let memcached = benchmark_layouts()
        .into_iter()
        .find(|l| l.name == "Memcached")
        .unwrap();
    c.bench_function("cluster_1065_vmas", |b| {
        b.iter(|| std::hint::black_box(cluster_spans(&memcached.spans, 0.02)))
    });
    c.bench_function("characterize_memcached", |b| {
        b.iter(|| std::hint::black_box(characterize(&memcached, 0.02)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
