//! Virtual Memory Areas and the per-process address space (§2.3).
//!
//! A VMA is a contiguous region of process virtual address space with
//! uniform protection/purpose. DMT's whole design leans on two empirical
//! properties validated in the paper: processes have a handful of *large*
//! VMAs covering 99% of their working set, and VMAs rarely change after
//! creation. [`AddressSpace`] maintains the VMA set with the operations
//! the mapping manager hooks (`mmap_region`, `__vma_adjust`,
//! `__split_vma` analogs).

use crate::OsError;
use dmt_mem::{PageSize, VirtAddr};
use std::collections::BTreeMap;

/// What a VMA holds — the paper's "local data section" classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmaKind {
    /// Program text.
    Code,
    /// Static data / BSS.
    Data,
    /// The heap (typically the dominant VMA).
    Heap,
    /// The stack.
    Stack,
    /// An anonymous or file-backed `mmap` region.
    Mmap,
    /// A shared library mapping (small, hot, rarely TLB-missed).
    Lib,
}

/// Identifier of a VMA within one address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmaId(pub u64);

/// One virtual memory area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vma {
    /// Stable identifier.
    pub id: VmaId,
    /// First byte of the region (page-aligned).
    pub base: VirtAddr,
    /// Length in bytes (page-aligned).
    pub len: u64,
    /// Purpose of the region.
    pub kind: VmaKind,
}

impl Vma {
    /// One past the last byte.
    pub fn end(&self) -> VirtAddr {
        VirtAddr(self.base.raw() + self.len)
    }

    /// Whether `va` falls inside the area.
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.base && va < self.end()
    }
}

/// A process's set of VMAs, keyed by base address.
///
/// # Examples
///
/// ```
/// use dmt_os::vma::{AddressSpace, VmaKind};
/// use dmt_mem::VirtAddr;
/// # fn main() -> Result<(), dmt_os::OsError> {
/// let mut aspace = AddressSpace::new();
/// let heap = aspace.mmap(VirtAddr(0x5000_0000), 64 << 20, VmaKind::Heap)?;
/// assert!(aspace.find(VirtAddr(0x5000_1234)).is_some());
/// aspace.grow(heap, 16 << 20)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    vmas: BTreeMap<u64, Vma>,
    next_id: u64,
    /// Counts of structural changes, for the "VMAs rarely change" stats.
    change_events: u64,
}

impl AddressSpace {
    /// An empty address space.
    pub fn new() -> Self {
        AddressSpace::default()
    }

    /// Create a VMA at a fixed base.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::VmaOverlap`] if the region intersects an
    /// existing VMA, or [`OsError::BadRange`] for empty/unaligned ranges.
    pub fn mmap(&mut self, base: VirtAddr, len: u64, kind: VmaKind) -> Result<VmaId, OsError> {
        if len == 0 || !base.is_aligned(PageSize::Size4K) || !len.is_multiple_of(4096) {
            return Err(OsError::BadRange {
                base: base.raw(),
                len,
            });
        }
        let end = base.raw() + len;
        // Check the nearest VMAs on both sides.
        if let Some((_, prev)) = self.vmas.range(..=base.raw()).next_back() {
            if prev.end().raw() > base.raw() {
                return Err(OsError::VmaOverlap { base: base.raw() });
            }
        }
        if let Some((_, next)) = self.vmas.range(base.raw()..).next() {
            if next.base.raw() < end {
                return Err(OsError::VmaOverlap { base: base.raw() });
            }
        }
        let id = VmaId(self.next_id);
        self.next_id += 1;
        self.vmas.insert(base.raw(), Vma { id, base, len, kind });
        self.change_events += 1;
        Ok(id)
    }

    /// Remove a whole VMA.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::NoSuchVma`] if the id is unknown.
    pub fn munmap(&mut self, id: VmaId) -> Result<Vma, OsError> {
        let base = self
            .vmas
            .values()
            .find(|v| v.id == id)
            .map(|v| v.base.raw())
            .ok_or(OsError::NoSuchVma { id: id.0 })?;
        self.change_events += 1;
        Ok(self.vmas.remove(&base).expect("just located"))
    }

    /// Grow a VMA upward by `delta` bytes (the `mmap`-grows-heap case,
    /// §4.2.3).
    ///
    /// # Errors
    ///
    /// Returns [`OsError::VmaOverlap`] if growth would collide with the
    /// next VMA, [`OsError::NoSuchVma`] for unknown ids, or
    /// [`OsError::BadRange`] for unaligned deltas.
    pub fn grow(&mut self, id: VmaId, delta: u64) -> Result<Vma, OsError> {
        if delta == 0 || !delta.is_multiple_of(4096) {
            return Err(OsError::BadRange { base: 0, len: delta });
        }
        let base = self
            .vmas
            .values()
            .find(|v| v.id == id)
            .map(|v| v.base.raw())
            .ok_or(OsError::NoSuchVma { id: id.0 })?;
        let new_end = {
            let v = &self.vmas[&base];
            v.end().raw() + delta
        };
        if let Some((_, next)) = self.vmas.range(base + 1..).next() {
            if next.base.raw() < new_end {
                return Err(OsError::VmaOverlap { base: next.base.raw() });
            }
        }
        let v = self.vmas.get_mut(&base).expect("located above");
        v.len += delta;
        self.change_events += 1;
        Ok(*v)
    }

    /// Shrink a VMA from the top by `delta` bytes (partial `munmap`).
    ///
    /// # Errors
    ///
    /// Returns [`OsError::BadRange`] if `delta` is unaligned or not
    /// smaller than the VMA, or [`OsError::NoSuchVma`] for unknown ids.
    pub fn shrink(&mut self, id: VmaId, delta: u64) -> Result<Vma, OsError> {
        let base = self
            .vmas
            .values()
            .find(|v| v.id == id)
            .map(|v| v.base.raw())
            .ok_or(OsError::NoSuchVma { id: id.0 })?;
        let v = self.vmas.get_mut(&base).expect("located above");
        if delta == 0 || !delta.is_multiple_of(4096) || delta >= v.len {
            return Err(OsError::BadRange { base: v.base.raw(), len: delta });
        }
        v.len -= delta;
        self.change_events += 1;
        Ok(*v)
    }

    /// The VMA containing `va`, if any.
    pub fn find(&self, va: VirtAddr) -> Option<&Vma> {
        self.vmas
            .range(..=va.raw())
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.contains(va))
    }

    /// Look up by id.
    pub fn get(&self, id: VmaId) -> Option<&Vma> {
        self.vmas.values().find(|v| v.id == id)
    }

    /// All VMAs in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// Number of VMAs.
    pub fn len(&self) -> usize {
        self.vmas.len()
    }

    /// Whether the address space is empty.
    pub fn is_empty(&self) -> bool {
        self.vmas.is_empty()
    }

    /// Total mapped bytes.
    pub fn total_bytes(&self) -> u64 {
        self.vmas.values().map(|v| v.len).sum()
    }

    /// Number of structural changes since creation (create/destroy/resize)
    /// — the quantity DMT bets is small (§4.2.3).
    pub fn change_events(&self) -> u64 {
        self.change_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmap_and_find() {
        let mut a = AddressSpace::new();
        let id = a.mmap(VirtAddr(0x1000), 0x4000, VmaKind::Heap).unwrap();
        assert_eq!(a.len(), 1);
        let v = a.find(VirtAddr(0x4fff)).unwrap();
        assert_eq!(v.id, id);
        assert!(a.find(VirtAddr(0x5000)).is_none());
        assert!(a.find(VirtAddr(0x0fff)).is_none());
    }

    #[test]
    fn overlap_rejected_on_both_sides() {
        let mut a = AddressSpace::new();
        a.mmap(VirtAddr(0x10_0000), 0x10_0000, VmaKind::Mmap).unwrap();
        // Overlapping from below.
        assert!(matches!(
            a.mmap(VirtAddr(0x0f_0000), 0x2_0000, VmaKind::Mmap),
            Err(OsError::VmaOverlap { .. })
        ));
        // Overlapping from inside.
        assert!(matches!(
            a.mmap(VirtAddr(0x18_0000), 0x1000, VmaKind::Mmap),
            Err(OsError::VmaOverlap { .. })
        ));
        // Adjacent is fine.
        assert!(a.mmap(VirtAddr(0x20_0000), 0x1000, VmaKind::Mmap).is_ok());
    }

    #[test]
    fn unaligned_or_empty_rejected() {
        let mut a = AddressSpace::new();
        assert!(a.mmap(VirtAddr(0x123), 0x1000, VmaKind::Heap).is_err());
        assert!(a.mmap(VirtAddr(0x1000), 0x123, VmaKind::Heap).is_err());
        assert!(a.mmap(VirtAddr(0x1000), 0, VmaKind::Heap).is_err());
    }

    #[test]
    fn grow_respects_neighbors() {
        let mut a = AddressSpace::new();
        let low = a.mmap(VirtAddr(0x1000), 0x1000, VmaKind::Heap).unwrap();
        a.mmap(VirtAddr(0x4000), 0x1000, VmaKind::Mmap).unwrap();
        // Growing by one page fits the hole.
        a.grow(low, 0x1000).unwrap();
        // Growing further collides.
        assert!(matches!(a.grow(low, 0x2000), Err(OsError::VmaOverlap { .. })));
        assert_eq!(a.get(low).unwrap().len, 0x2000);
    }

    #[test]
    fn shrink_keeps_base() {
        let mut a = AddressSpace::new();
        let id = a.mmap(VirtAddr(0x1000), 0x4000, VmaKind::Heap).unwrap();
        a.shrink(id, 0x1000).unwrap();
        let v = a.get(id).unwrap();
        assert_eq!(v.base, VirtAddr(0x1000));
        assert_eq!(v.len, 0x3000);
        // Shrinking to zero is rejected.
        assert!(a.shrink(id, 0x3000).is_err());
    }

    #[test]
    fn munmap_removes() {
        let mut a = AddressSpace::new();
        let id = a.mmap(VirtAddr(0x1000), 0x1000, VmaKind::Heap).unwrap();
        let v = a.munmap(id).unwrap();
        assert_eq!(v.id, id);
        assert!(a.is_empty());
        assert!(matches!(a.munmap(id), Err(OsError::NoSuchVma { .. })));
    }

    #[test]
    fn change_events_count_structural_ops() {
        let mut a = AddressSpace::new();
        let id = a.mmap(VirtAddr(0x1000), 0x2000, VmaKind::Heap).unwrap();
        a.grow(id, 0x1000).unwrap();
        a.shrink(id, 0x1000).unwrap();
        a.munmap(id).unwrap();
        assert_eq!(a.change_events(), 4);
    }

    #[test]
    fn total_bytes_sums_vmas() {
        let mut a = AddressSpace::new();
        a.mmap(VirtAddr(0x1000), 0x2000, VmaKind::Heap).unwrap();
        a.mmap(VirtAddr(0x10_0000), 0x3000, VmaKind::Mmap).unwrap();
        assert_eq!(a.total_bytes(), 0x5000);
    }
}
