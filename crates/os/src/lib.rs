//! DMT-Linux: the OS side of Direct Memory Translation (§4.2–§4.4, §4.6.2).
//!
//! * [`vma`] — VMAs and the per-process address space.
//! * [`tea`] — TEA creation/deletion/expansion and gradual migration,
//!   backed by the contiguous allocator with on-demand defragmentation.
//! * [`mapping`] — VMA-to-TEA mapping management: clustering under the 2%
//!   bubble threshold, splitting on contiguity failure, largest-VMA
//!   register selection, and the Table 1 clustering analysis.
//! * [`proc`] — the process: demand paging, THP promotion/demotion, and
//!   DMT register loading on context switch.
//!
//! # Example
//!
//! ```
//! use dmt_os::proc::{Process, ThpMode};
//! use dmt_os::vma::VmaKind;
//! use dmt_core::regfile::DmtRegisterFile;
//! use dmt_mem::{PhysMemory, VirtAddr};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut pm = PhysMemory::new_bytes(64 << 20);
//! let mut proc = Process::new(&mut pm, ThpMode::Never)?;
//! proc.mmap(&mut pm, VirtAddr(0x4000_0000), 16 << 20, VmaKind::Heap)?;
//! let mut regs = DmtRegisterFile::new();
//! proc.load_registers(&mut regs);
//! assert!(regs.covers(VirtAddr(0x4000_0000)));
//! # Ok(())
//! # }
//! ```

pub mod mapping;
pub mod proc;
pub mod tea;
pub mod vma;

pub use mapping::{cluster_spans, min_vmas_for_coverage, MappingManager, MappingPolicy};
pub use proc::{Process, ThpMode};
pub use tea::{Tea, TeaManager, TeaMigration};
pub use vma::{AddressSpace, Vma, VmaId, VmaKind};

use core::fmt;
use dmt_mem::MemError;
use dmt_pgtable::PtError;

/// Errors from the OS layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum OsError {
    /// Region overlaps an existing VMA.
    VmaOverlap {
        /// Base of the conflicting request.
        base: u64,
    },
    /// Empty or unaligned range.
    BadRange {
        /// Base of the request.
        base: u64,
        /// Length of the request.
        len: u64,
    },
    /// Unknown VMA id.
    NoSuchVma {
        /// The id.
        id: u64,
    },
    /// Address not covered by any VMA.
    NotInVma {
        /// The address.
        va: u64,
    },
    /// A TEA could not be allocated even after defragmentation.
    TeaAllocFailed {
        /// Frames requested.
        frames: u64,
    },
    /// THP promotion/demotion preconditions not met.
    PromotionBlocked {
        /// The offending address.
        va: u64,
    },
    /// Underlying physical-memory failure.
    Mem(MemError),
    /// Underlying page-table failure.
    Pt(PtError),
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::VmaOverlap { base } => write!(f, "VMA overlap at {base:#x}"),
            OsError::BadRange { base, len } => {
                write!(f, "bad range base={base:#x} len={len:#x}")
            }
            OsError::NoSuchVma { id } => write!(f, "no VMA with id {id}"),
            OsError::NotInVma { va } => write!(f, "address {va:#x} is outside every VMA"),
            OsError::TeaAllocFailed { frames } => {
                write!(f, "could not allocate a contiguous TEA of {frames} frames")
            }
            OsError::PromotionBlocked { va } => {
                write!(f, "huge-page operation blocked at {va:#x}")
            }
            OsError::Mem(e) => write!(f, "memory error: {e}"),
            OsError::Pt(e) => write!(f, "page-table error: {e}"),
        }
    }
}

impl std::error::Error for OsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OsError::Mem(e) => Some(e),
            OsError::Pt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for OsError {
    fn from(e: MemError) -> Self {
        OsError::Mem(e)
    }
}

impl From<PtError> for OsError {
    fn from(e: PtError) -> Self {
        OsError::Pt(e)
    }
}

#[cfg(test)]
mod proptests {
    use crate::mapping::{cluster_spans, min_vmas_for_coverage};
    use proptest::prelude::*;

    fn sorted_disjoint_spans() -> impl Strategy<Value = Vec<(u64, u64)>> {
        prop::collection::vec((0u64..1000, 1u64..100), 1..30).prop_map(|raw| {
            let mut spans = Vec::new();
            let mut cursor = 0u64;
            for (gap, len) in raw {
                let base = cursor + gap;
                spans.push((base << 12, len << 12));
                cursor = base + len;
            }
            spans
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Clustering never loses coverage, never overlaps, and respects
        /// the bubble budget per cluster.
        #[test]
        fn clustering_invariants(spans in sorted_disjoint_spans(), pct in 0u32..20) {
            let t = pct as f64 / 100.0;
            let clusters = cluster_spans(&spans, t);
            for (b, l) in &spans {
                let n = clusters
                    .iter()
                    .filter(|c| *b >= c.base && b + l <= c.base + c.span)
                    .count();
                prop_assert_eq!(n, 1);
            }
            for c in &clusters {
                prop_assert!(c.bubbles as f64 / c.span as f64 <= t + 1e-9);
            }
            for w in clusters.windows(2) {
                prop_assert!(w[0].base + w[0].span <= w[1].base);
            }
            prop_assert!(clusters.len() <= spans.len());
        }

        /// Coverage count is monotone in the fraction and bounded by the
        /// number of spans.
        #[test]
        fn coverage_monotone(spans in sorted_disjoint_spans()) {
            let c50 = min_vmas_for_coverage(&spans, 0.50);
            let c90 = min_vmas_for_coverage(&spans, 0.90);
            let c99 = min_vmas_for_coverage(&spans, 0.99);
            prop_assert!(c50 <= c90 && c90 <= c99);
            prop_assert!(c99 <= spans.len());
            prop_assert!(c50 >= 1);
        }
    }
}
