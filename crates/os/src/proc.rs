//! The process abstraction tying DMT-Linux together: address space, radix
//! page table, VMA-to-TEA mappings, demand paging, THP, and register
//! loading on context switch (§4.6.2).

use crate::mapping::{MappingManager, MappingPolicy};
use crate::tea::TeaManager;
use crate::vma::{AddressSpace, VmaId, VmaKind};
use crate::OsError;
use dmt_core::regfile::DmtRegisterFile;
use dmt_mem::buddy::FrameKind;
use dmt_mem::compact::Migration;
use dmt_mem::{PageSize, Pfn, PhysAddr, PhysMemory, VirtAddr};
use dmt_pgtable::pte::{Pte, PteFlags};
use dmt_pgtable::RadixPageTable;
use std::collections::HashMap;

/// Transparent Huge Page policy (Linux's `never`/`always`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThpMode {
    /// Only 4 KiB pages.
    Never,
    /// Back 2 MiB-aligned regions with 2 MiB pages on first touch.
    Always,
}

/// A process: one address space, one page table, one set of mappings.
///
/// # Examples
///
/// ```
/// use dmt_os::proc::{Process, ThpMode};
/// use dmt_os::vma::VmaKind;
/// use dmt_mem::{PhysMemory, VirtAddr};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut pm = PhysMemory::new_bytes(64 << 20);
/// let mut proc = Process::new(&mut pm, ThpMode::Never)?;
/// proc.mmap(&mut pm, VirtAddr(0x4000_0000), 8 << 20, VmaKind::Heap)?;
/// proc.populate(&mut pm, VirtAddr(0x4000_0000))?;
/// assert!(proc.page_table().translate(&pm, VirtAddr(0x4000_0000)).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Process {
    aspace: AddressSpace,
    pt: RadixPageTable,
    mappings: MappingManager,
    teas: TeaManager,
    thp: ThpMode,
    /// Whether TEAs and VMA-to-TEA mappings are maintained (false for
    /// the vanilla baseline).
    dmt_enabled: bool,
    /// Reverse map of data frames -> (page base VA, size) for compaction
    /// fix-ups.
    reverse: HashMap<u64, (VirtAddr, PageSize)>,
    /// Page faults served (first-touch populations).
    faults: u64,
    /// Gradual TEA migration steps that moved a page (§4.3).
    tea_migrations: u64,
    /// TLB shootdowns: events that invalidated live translations
    /// (unmap, promote/demote, compaction PTE patches).
    shootdowns: u64,
}

impl Process {
    /// Create an empty process with the default mapping policy.
    ///
    /// # Errors
    ///
    /// Propagates page-table allocation failure.
    pub fn new(pm: &mut PhysMemory, thp: ThpMode) -> Result<Self, OsError> {
        Self::with_policy(pm, thp, MappingPolicy::default())
    }

    /// Create a process with a custom mapping policy (ablations).
    ///
    /// # Errors
    ///
    /// Propagates page-table allocation failure.
    pub fn with_policy(
        pm: &mut PhysMemory,
        thp: ThpMode,
        policy: MappingPolicy,
    ) -> Result<Self, OsError> {
        Self::custom(pm, thp, policy, true, 4)
    }

    /// Fully custom construction: mapping policy, DMT on/off, and the
    /// radix depth (4 or 5 levels — §2.1.1's 5-level extension).
    ///
    /// # Errors
    ///
    /// Propagates page-table allocation failure.
    pub fn custom(
        pm: &mut PhysMemory,
        thp: ThpMode,
        policy: MappingPolicy,
        dmt_enabled: bool,
        levels: u8,
    ) -> Result<Self, OsError> {
        Ok(Process {
            aspace: AddressSpace::new(),
            pt: RadixPageTable::new(pm, levels)?,
            mappings: MappingManager::new(policy),
            teas: TeaManager::new(),
            thp,
            dmt_enabled,
            reverse: HashMap::new(),
            faults: 0,
            tea_migrations: 0,
            shootdowns: 0,
        })
    }

    /// Create a vanilla-Linux process: no TEAs, page-table pages come
    /// scattered from the buddy allocator (the baseline configurations
    /// of §6).
    ///
    /// # Errors
    ///
    /// Propagates page-table allocation failure.
    pub fn new_vanilla(pm: &mut PhysMemory, thp: ThpMode) -> Result<Self, OsError> {
        let mut p = Self::new(pm, thp)?;
        p.dmt_enabled = false;
        Ok(p)
    }

    /// The process's VMAs.
    pub fn address_space(&self) -> &AddressSpace {
        &self.aspace
    }

    /// The radix page table (walked by the x86 walker).
    pub fn page_table(&self) -> &RadixPageTable {
        &self.pt
    }

    /// The mapping manager (register-visible VMA-to-TEA state).
    pub fn mappings(&self) -> &MappingManager {
        &self.mappings
    }

    /// TEA accounting.
    pub fn tea_manager(&self) -> &TeaManager {
        &self.teas
    }

    /// THP mode in force.
    pub fn thp_mode(&self) -> ThpMode {
        self.thp
    }

    /// Page faults (first-touch populations) served so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Gradual TEA migration steps that moved a page (telemetry).
    pub fn tea_migrations(&self) -> u64 {
        self.tea_migrations
    }

    /// TLB shootdowns issued: unmaps of present pages, huge-page
    /// promotions/demotions, and compaction PTE patches (telemetry).
    pub fn shootdowns(&self) -> u64 {
        self.shootdowns
    }

    /// Create a VMA and its TEA mapping(s). With [`ThpMode::Always`] and a
    /// region of 2 MiB or more, both a 4 KiB and a 2 MiB TEA are created
    /// (Figure 12); otherwise only the 4 KiB TEA.
    ///
    /// # Errors
    ///
    /// Propagates VMA overlap and TEA allocation failures.
    pub fn mmap(
        &mut self,
        pm: &mut PhysMemory,
        base: VirtAddr,
        len: u64,
        kind: VmaKind,
    ) -> Result<VmaId, OsError> {
        let id = self.aspace.mmap(base, len, kind)?;
        if !self.dmt_enabled {
            return Ok(id);
        }
        let migs = self
            .mappings
            .add_region(pm, &mut self.teas, &mut self.pt, base, len, PageSize::Size4K)?;
        self.apply_migrations(pm, &migs)?;
        if self.thp == ThpMode::Always && len >= PageSize::Size2M.bytes() {
            let migs = self.mappings.add_region(
                pm,
                &mut self.teas,
                &mut self.pt,
                base,
                len,
                PageSize::Size2M,
            )?;
            self.apply_migrations(pm, &migs)?;
        }
        Ok(id)
    }

    /// Remove a VMA, its page mappings and TEAs.
    ///
    /// # Errors
    ///
    /// Propagates unknown-VMA and free errors.
    pub fn munmap(&mut self, pm: &mut PhysMemory, id: VmaId) -> Result<(), OsError> {
        let vma = self.aspace.munmap(id)?;
        // Unmap any present pages (data frames are leaked to keep the
        // model simple; the simulated workloads never unmap hot VMAs).
        let mut va = vma.base;
        while va < vma.end() {
            if let Some((pa, size)) = self.pt.translate(pm, va) {
                let aligned = va.align_down(size);
                let _ = self.pt.unmap(pm, aligned, size);
                self.reverse.remove(&pa.pfn().0);
                self.shootdowns += 1;
                va = VirtAddr(aligned.raw() + size.bytes());
            } else {
                va += PageSize::Size4K.bytes();
            }
        }
        self.mappings
            .remove_region(pm, &mut self.teas, vma.base, vma.len)?;
        Ok(())
    }

    /// Grow a VMA upward (§4.2.3), expanding its TEA coverage.
    ///
    /// # Errors
    ///
    /// Propagates overlap and allocation failures.
    pub fn grow(&mut self, pm: &mut PhysMemory, id: VmaId, delta: u64) -> Result<(), OsError> {
        let vma = self.aspace.grow(id, delta)?;
        if !self.dmt_enabled {
            return Ok(());
        }
        // Re-adding the grown tail merges into the existing mapping.
        let tail_base = VirtAddr(vma.end().raw() - delta);
        let migs = self.mappings.add_region(
            pm,
            &mut self.teas,
            &mut self.pt,
            tail_base,
            delta,
            PageSize::Size4K,
        )?;
        self.apply_migrations(pm, &migs)?;
        if self.thp == ThpMode::Always && vma.len >= PageSize::Size2M.bytes() {
            let migs = self.mappings.add_region(
                pm,
                &mut self.teas,
                &mut self.pt,
                tail_base,
                delta,
                PageSize::Size2M,
            )?;
            self.apply_migrations(pm, &migs)?;
        }
        Ok(())
    }

    /// Ensure the page containing `va` is present (demand paging).
    /// Returns `true` if a fault was served, `false` if already present.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::NotInVma`] for addresses outside every VMA and
    /// propagates allocation failures.
    pub fn populate(&mut self, pm: &mut PhysMemory, va: VirtAddr) -> Result<bool, OsError> {
        let vma = *self
            .aspace
            .find(va)
            .ok_or(OsError::NotInVma { va: va.raw() })?;
        if self.pt.translate(pm, va).is_some() {
            return Ok(false);
        }
        let use_huge = self.thp == ThpMode::Always && {
            let hbase = va.align_down(PageSize::Size2M);
            hbase >= vma.base
                && hbase.raw() + PageSize::Size2M.bytes() <= vma.end().raw()
        };
        if use_huge {
            let hbase = va.align_down(PageSize::Size2M);
            // 2 MiB of naturally aligned frames (order 9).
            let frame = pm.buddy_mut().alloc_order(9, FrameKind::HugeData)?;
            self.write_huge_leaf(pm, hbase, frame)?;
            self.reverse.insert(frame.0, (hbase, PageSize::Size2M));
        } else {
            let base = va.align_down(PageSize::Size4K);
            let frame = pm.alloc_frame(FrameKind::Data)?;
            self.pt.map(
                pm,
                base,
                PhysAddr::from_pfn(frame),
                PageSize::Size4K,
                PteFlags::WRITABLE | PteFlags::USER,
            )?;
            self.reverse.insert(frame.0, (base, PageSize::Size4K));
        }
        self.faults += 1;
        Ok(true)
    }

    /// Populate every page in `[base, base+len)`.
    ///
    /// # Errors
    ///
    /// See [`populate`](Self::populate).
    pub fn populate_range(
        &mut self,
        pm: &mut PhysMemory,
        base: VirtAddr,
        len: u64,
    ) -> Result<u64, OsError> {
        let mut faults = 0;
        let mut va = base;
        while va.raw() < base.raw() + len {
            if self.populate(pm, va)? {
                faults += 1;
            }
            // Skip by the size that actually got mapped.
            let size = self
                .pt
                .translate(pm, va)
                .map(|(_, s)| s)
                .unwrap_or(PageSize::Size4K);
            va = VirtAddr(va.align_down(size).raw() + size.bytes());
        }
        Ok(faults)
    }

    /// Promote the 2 MiB region containing `va` to a huge page (THP
    /// promotion, §4.4): data moves into a contiguous 2 MiB block, the
    /// 512 L1 PTEs in the TEA are cleared, and the L2 slot (a TEA-L2
    /// entry) becomes a huge leaf. The VMA-to-TEA mappings are untouched,
    /// exactly as the paper promises.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::NotInVma`] / [`OsError::PromotionBlocked`] when
    /// the region is not fully populated with 4 KiB pages.
    pub fn promote(&mut self, pm: &mut PhysMemory, va: VirtAddr) -> Result<(), OsError> {
        let hbase = va.align_down(PageSize::Size2M);
        let vma = *self
            .aspace
            .find(hbase)
            .ok_or(OsError::NotInVma { va: va.raw() })?;
        if hbase.raw() + PageSize::Size2M.bytes() > vma.end().raw() {
            return Err(OsError::PromotionBlocked { va: va.raw() });
        }
        // All 512 constituent pages must be present 4 KiB mappings.
        let mut old_frames = Vec::with_capacity(512);
        for i in 0..512u64 {
            let page = VirtAddr(hbase.raw() + i * 4096);
            match self.pt.translate(pm, page) {
                Some((pa, PageSize::Size4K)) => old_frames.push(pa.pfn()),
                _ => return Err(OsError::PromotionBlocked { va: page.raw() }),
            }
        }
        // Ensure a 2 MiB TEA exists for this VMA.
        if self.mappings.lookup(hbase, PageSize::Size2M).is_none() {
            let migs = self.mappings.add_region(
                pm,
                &mut self.teas,
                &mut self.pt,
                vma.base,
                vma.len,
                PageSize::Size2M,
            )?;
            self.apply_migrations(pm, &migs)?;
        }
        let huge = pm.buddy_mut().alloc_order(9, FrameKind::HugeData)?;
        // Clear the 512 L1 PTEs (they live in the TEA-L1 page).
        for i in 0..512u64 {
            let page = VirtAddr(hbase.raw() + i * 4096);
            self.pt.unmap(pm, page, PageSize::Size4K)?;
        }
        // Overwrite the L2 slot with a huge leaf.
        self.write_huge_leaf(pm, hbase, huge)?;
        // Release the old 4 KiB frames.
        for f in old_frames {
            self.reverse.remove(&f.0);
            pm.free_frame(f)?;
        }
        self.reverse.insert(huge.0, (hbase, PageSize::Size2M));
        self.shootdowns += 1;
        Ok(())
    }

    /// Demote the 2 MiB huge page containing `va` back to 512 4 KiB PTEs
    /// in the TEA-L1 page. The data stays in place; only PTEs change.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::PromotionBlocked`] when no huge mapping exists.
    pub fn demote(&mut self, pm: &mut PhysMemory, va: VirtAddr) -> Result<(), OsError> {
        let hbase = va.align_down(PageSize::Size2M);
        let (pa, size) = self
            .pt
            .translate(pm, hbase)
            .ok_or(OsError::PromotionBlocked { va: va.raw() })?;
        if size != PageSize::Size2M {
            return Err(OsError::PromotionBlocked { va: va.raw() });
        }
        let head = pa.pfn();
        // The TEA-L1 page for this span must exist (it does if the VMA
        // was mapped with a 4 KiB TEA, which mmap always creates).
        let mm = *self
            .mappings
            .lookup(hbase, PageSize::Size4K)
            .ok_or(OsError::PromotionBlocked { va: va.raw() })?;
        let (tea_frame, _) = mm.mapping.table_page_for(hbase).expect("covered");
        // Restore the L2 slot to point at the TEA-L1 table page.
        let l2_slot = self
            .pt
            .entry_pa(pm, hbase, 2)
            .ok_or(OsError::PromotionBlocked { va: hbase.raw() })?;
        pm.write_word(l2_slot, Pte::table(tea_frame).raw());
        // Write the 512 leaves.
        for i in 0..512u64 {
            let page = VirtAddr(hbase.raw() + i * 4096);
            let slot = mm.mapping.pte_addr(page).expect("covered");
            pm.write_word(
                slot,
                Pte::leaf(Pfn(head.0 + i), PteFlags::WRITABLE | PteFlags::USER).raw(),
            );
        }
        self.reverse.remove(&head.0);
        for i in 0..512u64 {
            self.reverse
                .insert(head.0 + i, (VirtAddr(hbase.raw() + i * 4096), PageSize::Size4K));
        }
        self.shootdowns += 1;
        Ok(())
    }

    /// Install a 2 MiB leaf at `hbase`, replacing an existing (empty) L1
    /// table pointer the way the kernel replaces a PMD entry for THP. The
    /// pointed-to TEA-L1 page stays owned by the 4 KiB TEA, ready for
    /// demotion.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::PromotionBlocked`] if the L2 slot is
    /// unreachable or already a huge leaf.
    fn write_huge_leaf(
        &mut self,
        pm: &mut PhysMemory,
        hbase: VirtAddr,
        frame: Pfn,
    ) -> Result<(), OsError> {
        let occupied = self.pt.entry_pa(pm, hbase, 2).filter(|slot| {
            let pte = Pte(pm.read_word(*slot));
            pte.present() && !pte.huge()
        });
        match occupied {
            Some(slot) => {
                pm.write_word(
                    slot,
                    Pte::huge_leaf(frame, PteFlags::WRITABLE | PteFlags::USER).raw(),
                );
                Ok(())
            }
            // No table pointer in the way: the ordinary map path builds
            // any missing intermediate tables.
            None => Ok(self.pt.map(
                pm,
                hbase,
                PhysAddr::from_pfn(frame),
                PageSize::Size2M,
                PteFlags::WRITABLE | PteFlags::USER,
            )?),
        }
    }

    /// Patch leaf PTEs after compaction moved data frames.
    ///
    /// # Errors
    ///
    /// Propagates page-table errors (indicates reverse-map corruption).
    pub fn apply_migrations(
        &mut self,
        pm: &mut PhysMemory,
        migrations: &[Migration],
    ) -> Result<(), OsError> {
        for m in migrations {
            if let Some((va, size)) = self.reverse.remove(&m.src.0) {
                let slot = self
                    .pt
                    .entry_pa(pm, va, size.leaf_level())
                    .ok_or(OsError::NotInVma { va: va.raw() })?;
                let old = Pte(pm.read_word(slot));
                let new = if size == PageSize::Size4K {
                    Pte::leaf(m.dst, old.flags())
                } else {
                    Pte::huge_leaf(m.dst, old.flags())
                };
                pm.write_word(slot, new.raw());
                self.reverse.insert(m.dst.0, (va, size));
                self.shootdowns += 1;
            }
        }
        Ok(())
    }

    /// Begin a gradual TEA migration for the mapping covering `va`
    /// (§4.3): the new TEA is allocated, the register's P bit goes clear
    /// (via [`load_registers`](Self::load_registers) exclusion), and
    /// [`migration_step`](Self::migration_step) moves one page per call.
    ///
    /// # Errors
    ///
    /// See [`MappingManager::begin_migration`].
    pub fn begin_tea_migration(
        &mut self,
        pm: &mut PhysMemory,
        va: VirtAddr,
        new_frames: u64,
    ) -> Result<(), OsError> {
        self.mappings
            .begin_migration(pm, &mut self.teas, va, PageSize::Size4K, new_frames)
    }

    /// One background-worker migration step; returns `true` while pages
    /// remain.
    ///
    /// # Errors
    ///
    /// See [`MappingManager::migration_step`].
    pub fn migration_step(&mut self, pm: &mut PhysMemory) -> Result<bool, OsError> {
        let moved = self.mappings.migration_step(pm, &mut self.teas, &mut self.pt)?;
        if moved {
            self.tea_migrations += 1;
        }
        Ok(moved)
    }

    /// Load the largest-VMA mappings into a DMT register file — the
    /// context-switch path (`switch_mm` analog, §4.6.2).
    pub fn load_registers(&self, rf: &mut DmtRegisterFile) {
        rf.load(&self.mappings.select_registers());
    }

    /// Whether TEAs and VMA-to-TEA mappings are maintained.
    pub fn dmt_enabled(&self) -> bool {
        self.dmt_enabled
    }

    /// Audit every OS-level invariant the oracle relies on, returning a
    /// description of each violation (empty = healthy):
    ///
    /// - VMA tree: page-aligned, address-ordered, non-overlapping;
    /// - reverse map: every tracked data frame still translates back to
    ///   its page at the recorded size (compaction fix-ups applied);
    /// - TEA map (DMT only): each mapping's cached [`crate::tea::Tea`]
    ///   agrees with its register-visible base/length, every TEA frame is
    ///   allocated as [`FrameKind::Tea`] (physically contiguous by
    ///   construction, so this is the "no one freed it under us" check),
    ///   per page size no two mappings cover the same VA, and — outside
    ///   of gradual migrations — the radix table page serving each
    ///   covered span *is* the TEA page (the single-PTE-copy invariant of
    ///   paper §3).
    pub fn audit(&self, pm: &PhysMemory) -> Vec<String> {
        use dmt_mem::buddy::FrameState;
        let mut errs = Vec::new();
        let mut prev_end = 0u64;
        for vma in self.aspace.iter() {
            if vma.base.raw() % 4096 != 0 || vma.len % 4096 != 0 {
                errs.push(format!("VMA at {} not page-aligned", vma.base));
            }
            if vma.base.raw() < prev_end {
                errs.push(format!(
                    "VMA at {} overlaps previous VMA ending at {prev_end:#x}",
                    vma.base
                ));
            }
            prev_end = vma.end().raw();
        }
        for (&frame, &(va, size)) in &self.reverse {
            match self.pt.translate(pm, va) {
                Some((pa, got)) if got == size && pa.pfn() == Pfn(frame) => {}
                other => errs.push(format!(
                    "reverse map says frame {frame} backs {va} at {size:?}, page table says {other:?}"
                )),
            }
        }
        if !self.dmt_enabled {
            return errs;
        }
        let mut spans: HashMap<u8, Vec<(u64, u64)>> = HashMap::new();
        for m in self.mappings.iter() {
            let size = m.mapping.page_size();
            let base = m.mapping.base();
            // The owned TEA may be longer than the register view needs
            // (migrations over-allocate for growth headroom), never
            // shorter or elsewhere.
            if m.tea.base != m.mapping.tea_base() || m.tea.frames < m.mapping.tea_frames() {
                errs.push(format!(
                    "mapping at {base}: TEA {:?}+{} disagrees with register view {:?}+{}",
                    m.tea.base,
                    m.tea.frames,
                    m.mapping.tea_base(),
                    m.mapping.tea_frames()
                ));
            }
            for i in 0..m.tea.frames {
                let pfn = Pfn(m.tea.base.0 + i);
                if pm.buddy().frame_state(pfn) != FrameState::Allocated(FrameKind::Tea) {
                    errs.push(format!(
                        "mapping at {base}: TEA frame {pfn:?} is {:?}, not a Tea frame",
                        pm.buddy().frame_state(pfn)
                    ));
                    break;
                }
            }
            spans
                .entry(size.encode())
                .or_default()
                .push((base.raw(), base.raw() + m.mapping.covered_bytes()));
            // Single-PTE-copy: the table page the walker reaches for each
            // 512-entry span must be the TEA page the fetcher indexes.
            // Skipped mid-migration (the walker intentionally lags) and
            // where a huge leaf overrides the 4 KiB tree (THP promotion).
            if !self.mappings.is_migrating() {
                let level = size.leaf_level();
                let span = size.bytes() * 512;
                let mut va = base;
                while va.raw() < base.raw() + m.mapping.covered_bytes() {
                    if let (Some(walked), Some((tea_frame, _))) = (
                        self.pt.table_frame(pm, va, level),
                        m.mapping.table_page_for(va),
                    ) {
                        if walked != tea_frame {
                            errs.push(format!(
                                "mapping at {base}: span {va} walks to table {walked:?}, TEA page is {tea_frame:?}"
                            ));
                        }
                    }
                    va = VirtAddr(va.raw() + span);
                }
            }
        }
        for list in spans.values_mut() {
            list.sort_unstable();
            for w in list.windows(2) {
                if w[1].0 < w[0].1 {
                    errs.push(format!(
                        "two same-size mappings overlap: [{:#x},{:#x}) and [{:#x},{:#x})",
                        w[0].0, w[0].1, w[1].0, w[1].1
                    ));
                }
            }
        }
        errs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_cache::hierarchy::MemoryHierarchy;
    use dmt_core::fetcher;

    #[test]
    fn mmap_populate_translate() {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut p = Process::new(&mut pm, ThpMode::Never).unwrap();
        let base = VirtAddr(0x4000_0000);
        p.mmap(&mut pm, base, 4 << 20, VmaKind::Heap).unwrap();
        assert!(p.populate(&mut pm, base + 0x3000).unwrap());
        assert!(!p.populate(&mut pm, base + 0x3000).unwrap(), "second touch: no fault");
        assert_eq!(p.faults(), 1);
        let (pa, size) = p.page_table().translate(&pm, base + 0x3123).unwrap();
        assert_eq!(size, PageSize::Size4K);
        assert_eq!(pa.page_offset(), 0x123);
    }

    #[test]
    fn dmt_fetch_agrees_with_walker() {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut p = Process::new(&mut pm, ThpMode::Never).unwrap();
        let base = VirtAddr(0x4000_0000);
        p.mmap(&mut pm, base, 8 << 20, VmaKind::Heap).unwrap();
        p.populate_range(&mut pm, base, 64 * 4096).unwrap();
        let mut rf = DmtRegisterFile::new();
        p.load_registers(&mut rf);
        let mut hier = MemoryHierarchy::default();
        for i in (0..64u64).step_by(7) {
            let va = VirtAddr(base.raw() + i * 4096 + 17);
            let fetched = fetcher::fetch_native(&rf, &mut pm, &mut hier, va).unwrap();
            let walked = p.page_table().translate(&pm, va).unwrap().0;
            assert_eq!(fetched.pa, walked, "page {i}");
            assert_eq!(fetched.refs(), 1);
        }
    }

    #[test]
    fn thp_always_populates_huge_pages() {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut p = Process::new(&mut pm, ThpMode::Always).unwrap();
        let base = VirtAddr(0x4000_0000);
        p.mmap(&mut pm, base, 8 << 20, VmaKind::Heap).unwrap();
        p.populate(&mut pm, base + 0x1234).unwrap();
        let (_, size) = p.page_table().translate(&pm, base).unwrap();
        assert_eq!(size, PageSize::Size2M);
        // The DMT fetcher resolves it through the 2 MiB TEA.
        let mut rf = DmtRegisterFile::new();
        p.load_registers(&mut rf);
        let mut hier = MemoryHierarchy::default();
        let out = fetcher::fetch_native(&rf, &mut pm, &mut hier, base + 0x1234).unwrap();
        assert_eq!(out.size, PageSize::Size2M);
        assert_eq!(out.refs(), 1);
    }

    #[test]
    fn promotion_and_demotion_roundtrip() {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut p = Process::new(&mut pm, ThpMode::Never).unwrap();
        let base = VirtAddr(0x4000_0000);
        p.mmap(&mut pm, base, 4 << 20, VmaKind::Heap).unwrap();
        p.populate_range(&mut pm, base, 2 << 20).unwrap();
        p.promote(&mut pm, base).unwrap();
        let (pa_huge, size) = p.page_table().translate(&pm, base + 0x5678).unwrap();
        assert_eq!(size, PageSize::Size2M);
        assert_eq!(pa_huge.offset_in(PageSize::Size2M), 0x5678);
        // Demote: same data frames, 4 KiB PTEs again.
        p.demote(&mut pm, base).unwrap();
        let (pa_small, size) = p.page_table().translate(&pm, base + 0x5678).unwrap();
        assert_eq!(size, PageSize::Size4K);
        assert_eq!(pa_small, pa_huge, "data did not move on demotion");
    }

    #[test]
    fn promotion_requires_full_population() {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut p = Process::new(&mut pm, ThpMode::Never).unwrap();
        let base = VirtAddr(0x4000_0000);
        p.mmap(&mut pm, base, 4 << 20, VmaKind::Heap).unwrap();
        p.populate(&mut pm, base).unwrap(); // only one page
        assert!(matches!(
            p.promote(&mut pm, base),
            Err(OsError::PromotionBlocked { .. })
        ));
    }

    #[test]
    fn munmap_cleans_up() {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut p = Process::new(&mut pm, ThpMode::Never).unwrap();
        let base = VirtAddr(0x4000_0000);
        let id = p.mmap(&mut pm, base, 4 << 20, VmaKind::Mmap).unwrap();
        p.populate_range(&mut pm, base, 16 * 4096).unwrap();
        let tea_before = pm.bytes_of_kind(FrameKind::Tea);
        assert!(tea_before > 0);
        p.munmap(&mut pm, id).unwrap();
        assert_eq!(pm.bytes_of_kind(FrameKind::Tea), 0);
        assert!(p.page_table().translate(&pm, base).is_none());
    }

    #[test]
    fn grow_extends_coverage() {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut p = Process::new(&mut pm, ThpMode::Never).unwrap();
        let base = VirtAddr(0x4000_0000);
        let id = p.mmap(&mut pm, base, 4 << 20, VmaKind::Heap).unwrap();
        p.grow(&mut pm, id, 4 << 20).unwrap();
        let mut rf = DmtRegisterFile::new();
        p.load_registers(&mut rf);
        // An address in the grown tail is covered.
        assert!(rf.covers(VirtAddr(base.raw() + (6 << 20))));
        p.populate(&mut pm, VirtAddr(base.raw() + (6 << 20))).unwrap();
        let mut hier = MemoryHierarchy::default();
        let out = fetcher::fetch_native(&rf, &mut pm, &mut hier, VirtAddr(base.raw() + (6 << 20)))
            .unwrap();
        assert_eq!(out.refs(), 1);
    }

    #[test]
    fn gradual_migration_with_pbit_fallback() {
        use dmt_cache::hierarchy::MemoryHierarchy;
        use dmt_core::fetcher;
        use dmt_core::DmtError;
        let mut pm = PhysMemory::new_bytes(128 << 20);
        let mut p = Process::new(&mut pm, ThpMode::Never).unwrap();
        let base = VirtAddr(0x4000_0000);
        p.mmap(&mut pm, base, 8 << 20, VmaKind::Heap).unwrap();
        p.populate_range(&mut pm, base, 8 << 20).unwrap();

        p.begin_tea_migration(&mut pm, base, 16).unwrap();
        assert!(p.mappings().is_migrating());
        // Mid-migration the register set excludes the mapping: the DMT
        // fetcher falls back (P bit clear), but the x86 walker still
        // translates through the original TEA pages.
        let mut rf = DmtRegisterFile::new();
        p.load_registers(&mut rf);
        let mut hier = MemoryHierarchy::default();
        assert!(matches!(
            fetcher::fetch_native(&rf, &mut pm, &mut hier, base),
            Err(DmtError::NotCovered { .. })
        ));
        let before = p.page_table().translate(&pm, base).unwrap();

        // Drive the background worker to completion.
        let mut steps = 1;
        while p.migration_step(&mut pm).unwrap() {
            steps += 1;
            // Translations keep working at every point of the migration.
            assert_eq!(p.page_table().translate(&pm, base).unwrap(), before);
        }
        assert_eq!(steps, 4, "one step per original TEA page (8MiB/2MiB)");
        assert!(!p.mappings().is_migrating());

        // After hand-over the fetcher works again via the new TEA and
        // agrees with the walker.
        p.load_registers(&mut rf);
        let out = fetcher::fetch_native(&rf, &mut pm, &mut hier, base).unwrap();
        assert_eq!(out.pa, before.0);
        let mm = p.mappings().lookup(base, PageSize::Size4K).unwrap();
        assert_eq!(mm.tea.frames, 16, "the mapping now owns the bigger TEA");
    }

    #[test]
    fn concurrent_migrations_are_rejected() {
        let mut pm = PhysMemory::new_bytes(128 << 20);
        let mut p = Process::new(&mut pm, ThpMode::Never).unwrap();
        let base = VirtAddr(0x4000_0000);
        p.mmap(&mut pm, base, 8 << 20, VmaKind::Heap).unwrap();
        p.begin_tea_migration(&mut pm, base, 8).unwrap();
        // One background worker: a second migration must be refused.
        assert!(p.begin_tea_migration(&mut pm, base, 16).is_err());
        // Unknown VA is refused too (after draining the first).
        while p.migration_step(&mut pm).unwrap() {}
        assert!(matches!(
            p.begin_tea_migration(&mut pm, VirtAddr(0x9999_0000_0000), 8),
            Err(OsError::NotInVma { .. })
        ));
    }

    #[test]
    fn audit_accepts_healthy_process_through_lifecycle() {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut p = Process::new(&mut pm, ThpMode::Never).unwrap();
        let base = VirtAddr(0x4000_0000);
        let id = p.mmap(&mut pm, base, 8 << 20, VmaKind::Heap).unwrap();
        assert!(p.audit(&pm).is_empty());
        p.populate_range(&mut pm, base, 2 << 20).unwrap();
        p.promote(&mut pm, base).unwrap();
        assert!(p.audit(&pm).is_empty(), "{:?}", p.audit(&pm));
        p.demote(&mut pm, base).unwrap();
        p.munmap(&mut pm, id).unwrap();
        assert!(p.audit(&pm).is_empty(), "{:?}", p.audit(&pm));
        assert!(pm.buddy().audit().is_ok());
    }

    #[test]
    fn audit_survives_gradual_migration() {
        let mut pm = PhysMemory::new_bytes(128 << 20);
        let mut p = Process::new(&mut pm, ThpMode::Never).unwrap();
        let base = VirtAddr(0x4000_0000);
        p.mmap(&mut pm, base, 8 << 20, VmaKind::Heap).unwrap();
        p.populate_range(&mut pm, base, 8 << 20).unwrap();
        p.begin_tea_migration(&mut pm, base, 16).unwrap();
        while p.migration_step(&mut pm).unwrap() {
            assert!(p.audit(&pm).is_empty(), "{:?}", p.audit(&pm));
        }
        assert!(p.audit(&pm).is_empty(), "{:?}", p.audit(&pm));
    }

    #[test]
    fn audit_catches_freed_tea_frame() {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut p = Process::new(&mut pm, ThpMode::Never).unwrap();
        let base = VirtAddr(0x4000_0000);
        p.mmap(&mut pm, base, 4 << 20, VmaKind::Heap).unwrap();
        let tea_base = p
            .mappings()
            .lookup(base, PageSize::Size4K)
            .unwrap()
            .tea
            .base;
        // Free one TEA frame behind the OS's back.
        pm.buddy_mut().free_contig(tea_base, 1).unwrap();
        assert!(p
            .audit(&pm)
            .iter()
            .any(|e| e.contains("not a Tea frame")));
    }

    #[test]
    fn page_table_pages_live_in_teas() {
        // §6.3's memory accounting: with DMT, last-level table pages are
        // TEA frames; only upper-level tables remain PageTable frames.
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut p = Process::new(&mut pm, ThpMode::Never).unwrap();
        let base = VirtAddr(0x4000_0000);
        p.mmap(&mut pm, base, 8 << 20, VmaKind::Heap).unwrap();
        p.populate_range(&mut pm, base, 8 << 20).unwrap();
        let tea = pm.bytes_of_kind(FrameKind::Tea);
        let ptp = pm.bytes_of_kind(FrameKind::PageTable);
        assert_eq!(tea, 4 * 4096, "8 MiB / 2 MiB spans = 4 TEA pages");
        // Root + L3 + L2 = 3 upper-level pages.
        assert_eq!(ptp, 3 * 4096);
    }
}
