//! Translation Entry Area management (§4.3).
//!
//! TEAs are contiguous physical regions holding last-level PTEs in VMA
//! order. [`TeaManager`] implements the paper's life cycle: creation via
//! the contiguous page allocator (falling back to on-demand
//! defragmentation), deletion, in-place expansion, and **gradual
//! migration** — when a TEA cannot grow in place, a new TEA is allocated
//! and pages are moved incrementally by a background worker while the DMT
//! register's P bit stays clear, so translations fall back to the x86
//! walker until the move completes.

use crate::OsError;
use dmt_mem::buddy::FrameKind;
use dmt_mem::compact::{make_contig, Migration};
use dmt_mem::{MemError, Pfn, PhysMemory};

/// A live TEA: a contiguous run of frames holding PTEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tea {
    /// First frame.
    pub base: Pfn,
    /// Length in frames.
    pub frames: u64,
}

/// Cost/accounting counters for TEA management (feeds the §6.3 overhead
/// experiment).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TeaStats {
    /// TEAs created.
    pub created: u64,
    /// TEAs deleted.
    pub deleted: u64,
    /// Successful in-place expansions.
    pub expanded_in_place: u64,
    /// Migrations started (in-place expansion failed).
    pub migrations: u64,
    /// Individual TEA pages copied by the migration worker.
    pub pages_migrated: u64,
    /// Creations that needed the allocator's defragmentation path.
    pub defrag_assisted: u64,
    /// Data-page moves performed by defragmentation on TEAs' behalf.
    pub defrag_page_moves: u64,
}

/// An in-flight gradual TEA migration (§4.3).
///
/// While a migration is pending the owning mapping's register must have
/// its P bit cleared; [`TeaManager::migration_step`] moves one page per
/// call (the background worker's unit of work).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeaMigration {
    /// The TEA being vacated.
    pub from: Tea,
    /// The TEA being filled.
    pub to: Tea,
    /// Pages copied so far.
    pub moved: u64,
}

impl TeaMigration {
    /// Whether every page has been copied.
    pub fn done(&self) -> bool {
        self.moved >= self.from.frames
    }
}

/// Allocator/owner of all TEAs.
#[derive(Debug, Default)]
pub struct TeaManager {
    stats: TeaStats,
}

impl TeaManager {
    /// A fresh manager.
    pub fn new() -> Self {
        TeaManager::default()
    }

    /// Accounting counters.
    pub fn stats(&self) -> TeaStats {
        self.stats
    }

    /// Create a TEA of `frames` contiguous frames.
    ///
    /// Tries the contiguous allocator first; on fragmentation failure,
    /// asks the allocator to defragment (movable-page compaction) and
    /// retries, mirroring `alloc_contig_pages`' on-demand compaction.
    /// Returns the TEA plus any data-page migrations compaction performed
    /// (the caller must patch page tables for those).
    ///
    /// # Errors
    ///
    /// Returns [`OsError::TeaAllocFailed`] when even compaction cannot
    /// produce the contiguity — the caller should split the mapping
    /// (§4.2.2).
    pub fn create(
        &mut self,
        pm: &mut PhysMemory,
        frames: u64,
    ) -> Result<(Tea, Vec<Migration>), OsError> {
        match pm.alloc_contig(frames, FrameKind::Tea) {
            Ok(base) => {
                self.stats.created += 1;
                Ok((Tea { base, frames }, Vec::new()))
            }
            Err(MemError::NoContiguousRun { .. }) => {
                match make_contig(pm.buddy_mut(), frames, FrameKind::Tea) {
                    Ok(res) => {
                        self.stats.created += 1;
                        self.stats.defrag_assisted += 1;
                        self.stats.defrag_page_moves += res.migrations.len() as u64;
                        // Compaction moved frame metadata only; move the
                        // word contents to match.
                        for m in &res.migrations {
                            pm.copy_frame(m.src, m.dst);
                        }
                        Ok((
                            Tea {
                                base: res.start,
                                frames,
                            },
                            res.migrations,
                        ))
                    }
                    Err(_) => Err(OsError::TeaAllocFailed { frames }),
                }
            }
            Err(e) => Err(OsError::Mem(e)),
        }
    }

    /// Delete a TEA, freeing its frames.
    ///
    /// # Errors
    ///
    /// Propagates allocator errors on double frees.
    pub fn delete(&mut self, pm: &mut PhysMemory, tea: Tea) -> Result<(), OsError> {
        pm.free_contig(tea.base, tea.frames)?;
        self.stats.deleted += 1;
        Ok(())
    }

    /// Try to expand a TEA in place by `extra` frames.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::TeaAllocFailed`] when the frames above the TEA
    /// are occupied; the caller then starts a migration.
    pub fn expand_in_place(
        &mut self,
        pm: &mut PhysMemory,
        tea: &mut Tea,
        extra: u64,
    ) -> Result<(), OsError> {
        pm.buddy_mut()
            .expand_in_place(tea.base, tea.frames, extra, FrameKind::Tea)
            .map_err(|_| OsError::TeaAllocFailed { frames: extra })?;
        tea.frames += extra;
        self.stats.expanded_in_place += 1;
        Ok(())
    }

    /// Begin a gradual migration of `tea` into a new TEA of `new_frames`
    /// (≥ the old size).
    ///
    /// # Errors
    ///
    /// Returns [`OsError::TeaAllocFailed`] when the new TEA cannot be
    /// allocated even with compaction.
    ///
    /// # Panics
    ///
    /// Panics if `new_frames < tea.frames`.
    pub fn begin_migration(
        &mut self,
        pm: &mut PhysMemory,
        tea: Tea,
        new_frames: u64,
    ) -> Result<TeaMigration, OsError> {
        assert!(new_frames >= tea.frames, "migrations only grow TEAs");
        let (to, _) = self.create(pm, new_frames)?;
        self.stats.migrations += 1;
        Ok(TeaMigration {
            from: tea,
            to,
            moved: 0,
        })
    }

    /// Background-worker step: copy one page of a pending migration.
    /// Returns `true` while more pages remain.
    pub fn migration_step(&mut self, pm: &mut PhysMemory, mig: &mut TeaMigration) -> bool {
        if mig.done() {
            return false;
        }
        let src = Pfn(mig.from.base.0 + mig.moved);
        let dst = Pfn(mig.to.base.0 + mig.moved);
        pm.copy_frame(src, dst);
        mig.moved += 1;
        self.stats.pages_migrated += 1;
        !mig.done()
    }

    /// Finish a completed migration: free the old TEA and return the new
    /// one.
    ///
    /// # Errors
    ///
    /// Propagates allocator errors freeing the old TEA.
    ///
    /// # Panics
    ///
    /// Panics if the migration is not [`TeaMigration::done`].
    pub fn finish_migration(
        &mut self,
        pm: &mut PhysMemory,
        mig: TeaMigration,
    ) -> Result<Tea, OsError> {
        assert!(mig.done(), "finish called before all pages moved");
        self.delete(pm, mig.from)?;
        Ok(mig.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_mem::PhysAddr;

    #[test]
    fn create_and_delete() {
        let mut pm = PhysMemory::new_frames(1024);
        let mut mgr = TeaManager::new();
        let (tea, migs) = mgr.create(&mut pm, 100).unwrap();
        assert!(migs.is_empty());
        assert_eq!(pm.bytes_of_kind(FrameKind::Tea), 100 * 4096);
        mgr.delete(&mut pm, tea).unwrap();
        assert_eq!(pm.bytes_of_kind(FrameKind::Tea), 0);
        assert_eq!(mgr.stats().created, 1);
        assert_eq!(mgr.stats().deleted, 1);
    }

    #[test]
    fn create_uses_defrag_when_fragmented() {
        let mut pm = PhysMemory::new_frames(256);
        // Checkerboard data pages to destroy contiguity.
        let mut held = Vec::new();
        while pm.buddy().free_frames() > 0 {
            held.push(pm.alloc_frame(FrameKind::Data).unwrap());
        }
        held.sort();
        for p in held.iter().skip(1).step_by(2) {
            pm.free_frame(*p).unwrap();
        }
        let mut mgr = TeaManager::new();
        let (tea, migs) = mgr.create(&mut pm, 16).unwrap();
        assert!(!migs.is_empty(), "compaction had to move data pages");
        assert_eq!(mgr.stats().defrag_assisted, 1);
        assert_eq!(tea.frames, 16);
    }

    #[test]
    fn create_fails_when_memory_unmovable() {
        let mut pm = PhysMemory::new_frames(64);
        // Pin page-table frames everywhere.
        for f in (0..64).step_by(2) {
            pm.buddy_mut()
                .reserve_range(f, 1, FrameKind::PageTable)
                .unwrap();
        }
        let mut mgr = TeaManager::new();
        assert!(matches!(
            mgr.create(&mut pm, 4),
            Err(OsError::TeaAllocFailed { frames: 4 })
        ));
    }

    #[test]
    fn in_place_expansion() {
        let mut pm = PhysMemory::new_frames(1024);
        let mut mgr = TeaManager::new();
        let (mut tea, _) = mgr.create(&mut pm, 10).unwrap();
        mgr.expand_in_place(&mut pm, &mut tea, 6).unwrap();
        assert_eq!(tea.frames, 16);
        assert_eq!(pm.bytes_of_kind(FrameKind::Tea), 16 * 4096);
    }

    #[test]
    fn gradual_migration_copies_contents() {
        let mut pm = PhysMemory::new_frames(1024);
        let mut mgr = TeaManager::new();
        let (tea, _) = mgr.create(&mut pm, 4).unwrap();
        // Write recognizable PTE-ish content.
        for i in 0..4u64 {
            pm.write_word(PhysAddr::from_pfn(Pfn(tea.base.0 + i)), 0xbeef_0000 + i);
        }
        let mut mig = mgr.begin_migration(&mut pm, tea, 8).unwrap();
        let mut steps = 0;
        while mgr.migration_step(&mut pm, &mut mig) {
            steps += 1;
        }
        assert_eq!(steps + 1, 4, "one step per page");
        let new = mgr.finish_migration(&mut pm, mig).unwrap();
        assert_eq!(new.frames, 8);
        for i in 0..4u64 {
            assert_eq!(
                pm.read_word(PhysAddr::from_pfn(Pfn(new.base.0 + i))),
                0xbeef_0000 + i
            );
        }
        assert_eq!(mgr.stats().pages_migrated, 4);
        // Old TEA frames were released.
        assert_eq!(pm.bytes_of_kind(FrameKind::Tea), 8 * 4096);
    }

    #[test]
    #[should_panic(expected = "finish called before")]
    fn finishing_early_panics() {
        let mut pm = PhysMemory::new_frames(256);
        let mut mgr = TeaManager::new();
        let (tea, _) = mgr.create(&mut pm, 4).unwrap();
        let mig = mgr.begin_migration(&mut pm, tea, 4).unwrap();
        let _ = mgr.finish_migration(&mut pm, mig);
    }
}
