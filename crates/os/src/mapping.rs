//! VMA-to-TEA mapping management (§4.2): merging, splitting, register
//! selection, and the clustering analysis behind Table 1 / Figure 5.
//!
//! The policy knobs are the ones the paper calls out: the bubble
//! threshold `t` (2% by default) that decides when adjacent VMAs are
//! clustered under one mapping, the register count (16), and the
//! largest-VMA-first register selection (large VMAs cause the page walks;
//! small hot VMAs rarely miss the TLB).

use crate::tea::{Tea, TeaManager, TeaMigration};
use crate::OsError;
use dmt_core::vtmap::VmaTeaMapping;
use dmt_mem::compact::Migration;
use dmt_mem::{PageSize, PhysMemory, Pfn, VirtAddr};
use dmt_pgtable::RadixPageTable;

/// Policy knobs for mapping management.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingPolicy {
    /// Maximum tolerated bubble fraction when clustering adjacent VMAs
    /// (the paper's `t`, default 0.02).
    pub bubble_threshold: f64,
    /// Number of hardware registers available (16 in the paper).
    pub registers: usize,
}

impl Default for MappingPolicy {
    fn default() -> Self {
        MappingPolicy {
            bubble_threshold: 0.02,
            registers: dmt_core::DMT_REGISTER_COUNT,
        }
    }
}

/// A mapping plus its backing TEA and bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct ManagedMapping {
    /// The register-visible mapping.
    pub mapping: VmaTeaMapping,
    /// Its TEA.
    pub tea: Tea,
    /// Bytes of VA inside the coverage that belong to no VMA (cluster
    /// bubbles plus alignment padding).
    pub bubble_bytes: u64,
}

/// Owner of all VMA-to-TEA mappings of one process (per page size).
#[derive(Debug, Default)]
pub struct MappingManager {
    policy: MappingPolicy,
    mappings: Vec<ManagedMapping>,
    /// An in-flight gradual TEA migration: the affected mapping's index
    /// and the migration state. While set, that mapping's register keeps
    /// its P bit clear (translations fall back to the x86 walker, §4.3).
    migrating: Option<(usize, TeaMigration)>,
}

impl MappingManager {
    /// Create a manager with the given policy.
    pub fn new(policy: MappingPolicy) -> Self {
        MappingManager {
            policy,
            mappings: Vec::new(),
            migrating: None,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> MappingPolicy {
        self.policy
    }

    /// All managed mappings.
    pub fn iter(&self) -> impl Iterator<Item = &ManagedMapping> {
        self.mappings.iter()
    }

    /// Number of managed mappings.
    pub fn len(&self) -> usize {
        self.mappings.len()
    }

    /// Whether no mappings exist.
    pub fn is_empty(&self) -> bool {
        self.mappings.is_empty()
    }

    /// The mapping covering `va` at `size`, if any.
    pub fn lookup(&self, va: VirtAddr, size: PageSize) -> Option<&ManagedMapping> {
        self.mappings
            .iter()
            .find(|m| m.mapping.page_size() == size && m.mapping.covers(va))
    }

    /// Register a new VMA region for direct translation at `size`,
    /// creating (or merging into) TEAs and installing the TEA pages as
    /// radix table pages so the x86 walker and the DMT fetcher share one
    /// copy of every PTE.
    ///
    /// Returns any data-page migrations the allocator's defragmentation
    /// performed (callers with data mapped must patch their tables —
    /// `Process` does this automatically).
    ///
    /// # Errors
    ///
    /// Returns [`OsError::TeaAllocFailed`] only when even recursive
    /// splitting down to single table pages cannot find memory.
    pub fn add_region(
        &mut self,
        pm: &mut PhysMemory,
        teas: &mut TeaManager,
        pt: &mut RadixPageTable,
        base: VirtAddr,
        len: u64,
        size: PageSize,
    ) -> Result<Vec<Migration>, OsError> {
        let proto = VmaTeaMapping::new(base, len, size, Pfn(0));

        // Already fully covered (e.g. second VMA inside an existing
        // cluster's padding): nothing to do.
        if let Some(owner) = self.find_containing(&proto) {
            let mm = &mut self.mappings[owner];
            mm.bubble_bytes = mm.bubble_bytes.saturating_sub(proto.covered_bytes().min(len));
            return Ok(Vec::new());
        }

        // Merge with an adjacent mapping when the bubble budget allows
        // (§4.2.1), otherwise stand alone.
        let merge_with = self.find_merge_candidate(&proto);
        match merge_with {
            Some(idx) => self.merge_into(pm, teas, pt, idx, proto, len),
            None => {
                let mut migrations = Vec::new();
                self.alloc_and_install(pm, teas, pt, proto, len, &mut migrations)?;
                Ok(migrations)
            }
        }
    }

    /// Drop every mapping whose coverage lies entirely within
    /// `[base, base+len)` (the munmap path), freeing their TEAs.
    ///
    /// # Errors
    ///
    /// Propagates TEA free errors.
    pub fn remove_region(
        &mut self,
        pm: &mut PhysMemory,
        teas: &mut TeaManager,
        base: VirtAddr,
        len: u64,
    ) -> Result<usize, OsError> {
        let end = base.raw() + len;
        let mut removed = 0;
        let mut i = 0;
        while i < self.mappings.len() {
            let m = &self.mappings[i].mapping;
            if m.base().raw() >= base.raw() && m.base().raw() + m.covered_bytes() <= end {
                let mm = self.mappings.swap_remove(i);
                teas.delete(pm, mm.tea)?;
                removed += 1;
            } else {
                i += 1;
            }
        }
        Ok(removed)
    }

    /// The largest-VMA-first register load (§4.2): mappings sorted by
    /// covered bytes, truncated to the register count. A mapping whose
    /// TEA is mid-migration is excluded — its register's P bit is clear
    /// until the background worker finishes (§4.3).
    pub fn select_registers(&self) -> Vec<VmaTeaMapping> {
        self.select_registers_by(|m| m.mapping.covered_bytes())
    }

    /// Begin a gradual migration of the mapping covering `va` at `size`
    /// into a TEA of `new_frames` frames (e.g. ahead of a merge or VMA
    /// growth that cannot expand in place).
    ///
    /// # Errors
    ///
    /// Returns [`OsError::NotInVma`] when no mapping covers `va`,
    /// [`OsError::TeaAllocFailed`] when the new TEA cannot be allocated,
    /// and [`OsError::BadRange`] if another migration is already pending
    /// (the paper's design has one background worker).
    pub fn begin_migration(
        &mut self,
        pm: &mut PhysMemory,
        teas: &mut TeaManager,
        va: VirtAddr,
        size: PageSize,
        new_frames: u64,
    ) -> Result<(), OsError> {
        if self.migrating.is_some() {
            return Err(OsError::BadRange { base: va.raw(), len: 0 });
        }
        let idx = self
            .mappings
            .iter()
            .position(|m| m.mapping.page_size() == size && m.mapping.covers(va))
            .ok_or(OsError::NotInVma { va: va.raw() })?;
        let mig = teas.begin_migration(pm, self.mappings[idx].tea, new_frames)?;
        self.migrating = Some((idx, mig));
        Ok(())
    }

    /// One background-worker step: copy one TEA page. Returns `true`
    /// while more pages remain; on the final step the radix tree is
    /// retargeted to the new TEA, the mapping updated, and the old TEA
    /// freed — after which the register may be reloaded with P set.
    ///
    /// # Errors
    ///
    /// Propagates page-table/allocator errors from the hand-over.
    pub fn migration_step(
        &mut self,
        pm: &mut PhysMemory,
        teas: &mut TeaManager,
        pt: &mut RadixPageTable,
    ) -> Result<bool, OsError> {
        let Some((idx, mut mig)) = self.migrating.take() else {
            return Ok(false);
        };
        let more = teas.migration_step(pm, &mut mig);
        if more {
            self.migrating = Some((idx, mig));
            return Ok(true);
        }
        // Hand-over: point the tree at the new pages and swap the
        // mapping's TEA.
        let old = self.mappings[idx];
        let size = old.mapping.page_size();
        let span = 512u64 << size.shift();
        for i in 0..old.tea.frames {
            let span_va = VirtAddr(old.mapping.base().raw() + i * span);
            let new_frame = Pfn(mig.to.base.0 + i);
            if pt
                .table_frame(pm, span_va, size.leaf_level())
                .is_some_and(|f| f.0 == old.tea.base.0 + i)
            {
                pt.retarget_table(pm, span_va, size.leaf_level(), new_frame)?;
            }
        }
        let new_tea = teas.finish_migration(pm, mig)?;
        let mut mapping = old.mapping;
        mapping.set_tea_base(new_tea.base);
        self.mappings[idx] = ManagedMapping {
            mapping,
            tea: new_tea,
            bubble_bytes: old.bubble_bytes,
        };
        Ok(false)
    }

    /// Whether a gradual migration is in flight.
    pub fn is_migrating(&self) -> bool {
        self.migrating.is_some()
    }

    /// Register selection with a custom priority key (used by the
    /// hot-VMA-first ablation).
    pub fn select_registers_by<K: Ord, F: Fn(&ManagedMapping) -> K>(
        &self,
        key: F,
    ) -> Vec<VmaTeaMapping> {
        let migrating_idx = self.migrating.as_ref().map(|(i, _)| *i);
        let mut sorted: Vec<(usize, &ManagedMapping)> =
            self.mappings.iter().enumerate().collect();
        sorted.sort_by_key(|(_, m)| std::cmp::Reverse(key(m)));
        sorted
            .into_iter()
            .filter(|(i, _)| Some(*i) != migrating_idx)
            .take(self.policy.registers)
            .map(|(_, m)| m.mapping)
            .collect()
    }

    // ---- internals -----------------------------------------------------

    fn find_containing(&self, proto: &VmaTeaMapping) -> Option<usize> {
        self.mappings.iter().position(|m| {
            m.mapping.page_size() == proto.page_size()
                && m.mapping.covers(proto.base())
                && m.mapping.covers(VirtAddr(
                    proto.base().raw() + proto.covered_bytes() - 1,
                ))
        })
    }

    /// An adjacent same-size mapping the new region can cluster with
    /// under the bubble threshold.
    fn find_merge_candidate(&self, proto: &VmaTeaMapping) -> Option<usize> {
        let new_start = proto.base().raw();
        let new_end = new_start + proto.covered_bytes();
        self.mappings.iter().position(|m| {
            if m.mapping.page_size() != proto.page_size() {
                return false;
            }
            let old_start = m.mapping.base().raw();
            let old_end = old_start + m.mapping.covered_bytes();
            if new_end < old_start {
                let gap = old_start - new_end;
                let span = old_end - new_start;
                (gap + m.bubble_bytes) as f64 / span as f64 <= self.policy.bubble_threshold
            } else if old_end <= new_start {
                let gap = new_start - old_end;
                let span = new_end - old_start;
                (gap + m.bubble_bytes) as f64 / span as f64 <= self.policy.bubble_threshold
            } else {
                // Overlapping coverage (e.g. Memcached slabs whose
                // table-span rounding collides): always merge — two
                // mappings must never own the same table page.
                true
            }
        })
    }

    /// Merge the new region into mapping `idx` (§4.2.1): expand the TEA in
    /// place when the merged coverage extends upward, otherwise allocate a
    /// merged TEA and migrate.
    fn merge_into(
        &mut self,
        pm: &mut PhysMemory,
        teas: &mut TeaManager,
        pt: &mut RadixPageTable,
        idx: usize,
        proto: VmaTeaMapping,
        new_vma_len: u64,
    ) -> Result<Vec<Migration>, OsError> {
        let old = self.mappings[idx];
        let merged_start = old.mapping.base().raw().min(proto.base().raw());
        let merged_end = (old.mapping.base().raw() + old.mapping.covered_bytes())
            .max(proto.base().raw() + proto.covered_bytes());
        let size = proto.page_size();
        let merged_proto =
            VmaTeaMapping::new(VirtAddr(merged_start), merged_end - merged_start, size, Pfn(0));
        let merged_frames = merged_proto.tea_frames();
        let gap = merged_proto
            .covered_bytes()
            .saturating_sub(old.mapping.covered_bytes() + proto.covered_bytes());
        let bubbles =
            old.bubble_bytes + gap + proto.covered_bytes().saturating_sub(new_vma_len);

        let extends_up_only = merged_start == old.mapping.base().raw();
        let mut migrations = Vec::new();
        let extra = merged_frames - old.tea.frames;
        if extends_up_only && extra > 0 {
            let mut tea = old.tea;
            if teas.expand_in_place(pm, &mut tea, extra).is_ok() {
                let merged = VmaTeaMapping::new(
                    VirtAddr(merged_start),
                    merged_end - merged_start,
                    size,
                    tea.base,
                );
                // Install the newly covered table pages.
                self.install_coverage(pm, pt, &merged, old.tea.frames)?;
                self.mappings[idx] = ManagedMapping {
                    mapping: merged,
                    tea,
                    bubble_bytes: bubbles,
                };
                return Ok(migrations);
            }
        }
        // Relocate: allocate a merged TEA, move old pages to their new
        // offsets, retarget table entries, free the old TEA.
        let (new_tea, migs) = match teas.create(pm, merged_frames) {
            Ok(v) => v,
            Err(OsError::TeaAllocFailed { .. }) => {
                // Fall back: keep them separate (cannot merge under
                // fragmentation); allocate the new region standalone.
                self.alloc_and_install(pm, teas, pt, proto, new_vma_len, &mut migrations)?;
                return Ok(migrations);
            }
            Err(e) => return Err(e),
        };
        migrations.extend(migs);
        let merged = VmaTeaMapping::new(
            VirtAddr(merged_start),
            merged_end - merged_start,
            size,
            new_tea.base,
        );
        // Move the old TEA's pages into position.
        let span_bytes = 512u64 << size.shift();
        let old_offset_pages = (old.mapping.base().raw() - merged_start) / span_bytes;
        for i in 0..old.tea.frames {
            let src = Pfn(old.tea.base.0 + i);
            let dst = Pfn(new_tea.base.0 + old_offset_pages + i);
            pm.copy_frame(src, dst);
            let span_va = VirtAddr(old.mapping.base().raw() + i * span_bytes);
            // Retarget only if the tree actually points at the old page.
            if pt
                .table_frame(pm, span_va, size.leaf_level())
                .is_some_and(|f| f == src)
            {
                pt.retarget_table(pm, span_va, size.leaf_level(), dst)?;
            }
        }
        teas.delete(pm, old.tea)?;
        self.install_coverage(pm, pt, &merged, 0)?;
        self.mappings[idx] = ManagedMapping {
            mapping: merged,
            tea: new_tea,
            bubble_bytes: bubbles,
        };
        Ok(migrations)
    }

    /// Allocate a TEA for `proto`, splitting recursively on contiguity
    /// failure (§4.2.2), and install coverage.
    fn alloc_and_install(
        &mut self,
        pm: &mut PhysMemory,
        teas: &mut TeaManager,
        pt: &mut RadixPageTable,
        proto: VmaTeaMapping,
        vma_len: u64,
        migrations: &mut Vec<Migration>,
    ) -> Result<(), OsError> {
        match teas.create(pm, proto.tea_frames()) {
            Ok((tea, migs)) => {
                migrations.extend(migs);
                let mapping = VmaTeaMapping::new(
                    proto.base(),
                    proto.covered_bytes(),
                    proto.page_size(),
                    tea.base,
                );
                self.install_coverage(pm, pt, &mapping, 0)?;
                self.mappings.push(ManagedMapping {
                    mapping,
                    tea,
                    bubble_bytes: proto.covered_bytes().saturating_sub(vma_len),
                });
                Ok(())
            }
            Err(OsError::TeaAllocFailed { .. }) => {
                match proto.split(Pfn(0)) {
                    Some((lo, hi)) => {
                        self.alloc_and_install(pm, teas, pt, lo, lo.covered_bytes(), migrations)?;
                        self.alloc_and_install(pm, teas, pt, hi, hi.covered_bytes(), migrations)
                    }
                    None => Err(OsError::TeaAllocFailed {
                        frames: proto.tea_frames(),
                    }),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Install TEA pages `start_frame..` as radix table pages for the
    /// mapping's coverage.
    fn install_coverage(
        &self,
        pm: &mut PhysMemory,
        pt: &mut RadixPageTable,
        mapping: &VmaTeaMapping,
        start_frame: u64,
    ) -> Result<(), OsError> {
        let size = mapping.page_size();
        let span_bytes = 512u64 << size.shift();
        for i in start_frame..mapping.tea_frames() {
            let span_va = VirtAddr(mapping.base().raw() + i * span_bytes);
            let frame = Pfn(mapping.tea_base().0 + i);
            if pt.table_frame(pm, span_va, size.leaf_level()) == Some(frame) {
                continue;
            }
            pt.install_table(pm, span_va, size.leaf_level(), frame)?;
        }
        Ok(())
    }
}

/// A cluster of adjacent VMAs (the Table 1 "Clusters" analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cluster {
    /// First byte covered.
    pub base: u64,
    /// Covered span in bytes (VMAs plus bubbles).
    pub span: u64,
    /// Bubble bytes inside the span.
    pub bubbles: u64,
}

/// Greedily cluster sorted `(base, len)` spans, tolerating a bubble
/// fraction of at most `threshold` per cluster — the paper's 2% rule.
///
/// # Panics
///
/// Panics if the spans are not sorted by base or overlap.
pub fn cluster_spans(spans: &[(u64, u64)], threshold: f64) -> Vec<Cluster> {
    let mut clusters: Vec<Cluster> = Vec::new();
    for &(base, len) in spans {
        match clusters.last_mut() {
            Some(c) if base >= c.base + c.span => {
                let gap = base - (c.base + c.span);
                let new_span = base + len - c.base;
                let new_bubbles = c.bubbles + gap;
                if new_bubbles as f64 / new_span as f64 <= threshold {
                    c.span = new_span;
                    c.bubbles = new_bubbles;
                } else {
                    clusters.push(Cluster {
                        base,
                        span: len,
                        bubbles: 0,
                    });
                }
            }
            Some(_) => panic!("spans must be sorted and disjoint"),
            None => clusters.push(Cluster {
                base,
                span: len,
                bubbles: 0,
            }),
        }
    }
    clusters
}

/// Minimum number of VMAs (largest first) covering `frac` of the total
/// bytes — Table 1's "99% Cov." column.
pub fn min_vmas_for_coverage(spans: &[(u64, u64)], frac: f64) -> usize {
    let total: u64 = spans.iter().map(|(_, l)| l).sum();
    if total == 0 {
        return 0;
    }
    let mut sizes: Vec<u64> = spans.iter().map(|(_, l)| *l).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let target = (total as f64 * frac).ceil() as u64;
    let mut covered = 0u64;
    for (i, s) in sizes.iter().enumerate() {
        covered += s;
        if covered >= target {
            return i + 1;
        }
    }
    sizes.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_mem::buddy::FrameKind;

    fn setup() -> (PhysMemory, TeaManager, RadixPageTable, MappingManager) {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let pt = RadixPageTable::new(&mut pm, 4).unwrap();
        (
            pm,
            TeaManager::new(),
            pt,
            MappingManager::new(MappingPolicy::default()),
        )
    }

    #[test]
    fn add_region_installs_tea_pages_as_tables() {
        let (mut pm, mut teas, mut pt, mut mgr) = setup();
        mgr.add_region(&mut pm, &mut teas, &mut pt, VirtAddr(0x40_0000), 8 << 20, PageSize::Size4K)
            .unwrap();
        assert_eq!(mgr.len(), 1);
        let mm = mgr.lookup(VirtAddr(0x40_0000), PageSize::Size4K).unwrap();
        // Every table page in the coverage is a TEA frame.
        for i in 0..mm.tea.frames {
            let va = VirtAddr(0x40_0000 + i * (2 << 20));
            assert_eq!(
                pt.table_frame(&pm, va, 1),
                Some(Pfn(mm.tea.base.0 + i)),
                "span {i}"
            );
        }
    }

    #[test]
    fn fetcher_and_walker_share_ptes() {
        use dmt_pgtable::pte::PteFlags;
        let (mut pm, mut teas, mut pt, mut mgr) = setup();
        let base = VirtAddr(0x40_0000);
        mgr.add_region(&mut pm, &mut teas, &mut pt, base, 4 << 20, PageSize::Size4K)
            .unwrap();
        // Map a page through the ordinary radix path.
        pt.map(&mut pm, base, dmt_mem::PhysAddr(0x123000), PageSize::Size4K, PteFlags::WRITABLE)
            .unwrap();
        // The DMT slot arithmetic sees the same PTE.
        let mm = mgr.lookup(base, PageSize::Size4K).unwrap();
        let slot = mm.mapping.pte_addr(base).unwrap();
        let pte = dmt_pgtable::pte::Pte(pm.read_word(slot));
        assert!(pte.present());
        assert_eq!(pte.phys_addr().raw(), 0x123000);
    }

    #[test]
    fn adjacent_regions_merge_under_threshold() {
        let (mut pm, mut teas, mut pt, mut mgr) = setup();
        // Two VMAs 2 MiB apart within a 100 MiB+ span: gap is < 2%.
        mgr.add_region(&mut pm, &mut teas, &mut pt, VirtAddr(0), 100 << 20, PageSize::Size4K)
            .unwrap();
        mgr.add_region(
            &mut pm,
            &mut teas,
            &mut pt,
            VirtAddr((102 << 20) as u64),
            20 << 20,
            PageSize::Size4K,
        )
        .unwrap();
        assert_eq!(mgr.len(), 1, "clustered into one mapping");
        let m = mgr.iter().next().unwrap();
        assert_eq!(m.mapping.covered_bytes(), 122 << 20);
        assert!(m.bubble_bytes >= 2 << 20);
    }

    #[test]
    fn distant_regions_stay_separate() {
        let (mut pm, mut teas, mut pt, mut mgr) = setup();
        mgr.add_region(&mut pm, &mut teas, &mut pt, VirtAddr(0), 4 << 20, PageSize::Size4K)
            .unwrap();
        mgr.add_region(
            &mut pm,
            &mut teas,
            &mut pt,
            VirtAddr(1 << 30),
            4 << 20,
            PageSize::Size4K,
        )
        .unwrap();
        assert_eq!(mgr.len(), 2, "gap far exceeds the 2% budget");
    }

    #[test]
    fn fragmentation_triggers_mapping_split() {
        let mut pm = PhysMemory::new_frames(4096);
        // Pin unmovable frames everywhere so only 2-frame runs remain.
        for f in (0..4096).step_by(3) {
            pm.buddy_mut()
                .reserve_range(f, 1, FrameKind::PageTable)
                .unwrap();
        }
        let mut pt = RadixPageTable::new(&mut pm, 4).unwrap();
        let mut teas = TeaManager::new();
        let mut mgr = MappingManager::new(MappingPolicy::default());
        // 16 MiB needs 8 TEA frames contiguously — impossible now.
        mgr.add_region(&mut pm, &mut teas, &mut pt, VirtAddr(0), 16 << 20, PageSize::Size4K)
            .unwrap();
        assert!(mgr.len() > 1, "mapping split into {} pieces", mgr.len());
        // Every 2 MiB span is still covered by exactly one mapping.
        for span in 0..8u64 {
            let va = VirtAddr(span * (2 << 20));
            let covering = mgr
                .iter()
                .filter(|m| m.mapping.covers(va))
                .count();
            assert_eq!(covering, 1, "span {span}");
        }
    }

    #[test]
    fn remove_region_frees_teas() {
        let (mut pm, mut teas, mut pt, mut mgr) = setup();
        mgr.add_region(&mut pm, &mut teas, &mut pt, VirtAddr(0), 4 << 20, PageSize::Size4K)
            .unwrap();
        let tea_bytes = pm.bytes_of_kind(FrameKind::Tea);
        assert!(tea_bytes > 0);
        let removed = mgr
            .remove_region(&mut pm, &mut teas, VirtAddr(0), 4 << 20)
            .unwrap();
        assert_eq!(removed, 1);
        assert_eq!(pm.bytes_of_kind(FrameKind::Tea), 0);
    }

    #[test]
    fn register_selection_prefers_largest() {
        let (mut pm, mut teas, mut pt, mut mgr) = setup();
        // 20 small distant VMAs + 1 large one.
        for i in 0..20u64 {
            mgr.add_region(
                &mut pm,
                &mut teas,
                &mut pt,
                VirtAddr((i + 1) << 30),
                2 << 20,
                PageSize::Size4K,
            )
            .unwrap();
        }
        mgr.add_region(
            &mut pm,
            &mut teas,
            &mut pt,
            VirtAddr(100 << 30),
            32 << 20,
            PageSize::Size4K,
        )
        .unwrap();
        let regs = mgr.select_registers();
        assert_eq!(regs.len(), 16);
        assert_eq!(regs[0].covered_bytes(), 32 << 20, "largest VMA first");
    }

    #[test]
    fn cluster_analysis_matches_paper_rule() {
        // Three spans: two nearby, one distant.
        let spans = [(0u64, 100 << 20), (101 << 20, 50 << 20), (10 << 30, 1 << 20)];
        let clusters = cluster_spans(&spans, 0.02);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].bubbles, 1 << 20);
        // With a zero threshold nothing clusters.
        assert_eq!(cluster_spans(&spans, 0.0).len(), 3);
    }

    #[test]
    fn coverage_analysis() {
        // One dominant VMA and nine tiny ones.
        let mut spans = vec![(0u64, 99 << 20)];
        for i in 0..9u64 {
            spans.push(((1 + i) << 30, 100 << 10));
        }
        assert_eq!(min_vmas_for_coverage(&spans, 0.90), 1);
        assert!(min_vmas_for_coverage(&spans, 0.999) > 1);
        assert_eq!(min_vmas_for_coverage(&[], 0.99), 0);
    }
}
