//! A binary buddy allocator over physical frames.
//!
//! This is the analog of the Linux buddy allocator that DMT-Linux builds on
//! (paper §4.3/§4.6.2): TEAs are carved out of it with
//! [`BuddyAllocator::alloc_contig`] (the `alloc_contig_pages` analog), page
//! tables and data pages come from ordinary order-0 allocations, and the
//! free-memory fragmentation index of §6.3 is computed over its free lists.
//!
//! Blocks are naturally aligned power-of-two runs of frames, split on demand
//! and eagerly merged with their buddy on free, exactly like the kernel's
//! allocator. Arbitrary (non power-of-two) contiguous ranges are supported
//! by carving them out of whatever free blocks cover them, which is how
//! `alloc_contig_range` behaves.

use crate::addr::Pfn;
use crate::{MemError, Result};
use std::collections::BTreeSet;

/// What an allocated frame is used for.
///
/// The distinction matters for two things in the paper: movability during
/// defragmentation (§4.3 — only data pages move; page tables and TEAs are
/// pinned) and the page-table memory-overhead accounting of §6.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Application data page (movable by compaction).
    Data,
    /// A 2 MiB/1 GiB huge data page's frames. Not movable by the
    /// frame-granular compactor (a real kernel migrates the whole huge
    /// page; moving one constituent frame would shatter it).
    HugeData,
    /// An ordinary radix page-table page.
    PageTable,
    /// A page belonging to a Translation Entry Area.
    Tea,
    /// Firmware/kernel reserved (never movable, never freed).
    Reserved,
}

impl FrameKind {
    /// Whether compaction may relocate a frame of this kind.
    #[inline]
    pub const fn movable(self) -> bool {
        matches!(self, FrameKind::Data)
    }
}

/// Per-frame allocation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameState {
    /// The frame is free (part of some free block).
    Free,
    /// The frame is allocated for the given purpose.
    Allocated(FrameKind),
}

/// Binary buddy allocator over a flat range of physical frames.
///
/// # Examples
///
/// ```
/// use dmt_mem::buddy::{BuddyAllocator, FrameKind};
/// let mut buddy = BuddyAllocator::new(1024);
/// let a = buddy.alloc_order(0, FrameKind::Data).unwrap();
/// let run = buddy.alloc_contig(100, FrameKind::Tea).unwrap();
/// buddy.free_contig(run, 100).unwrap();
/// buddy.free_order(a, 0).unwrap();
/// assert_eq!(buddy.free_frames(), 1024);
/// ```
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    /// Free block heads per order.
    free_lists: Vec<BTreeSet<u64>>,
    /// Per-frame state.
    state: Vec<FrameState>,
    /// Number of free frames (maintained incrementally).
    free_frames: u64,
    max_order: u8,
    /// Lifetime churn counters (telemetry only — deliberately excluded
    /// from [`state_hash`](Self::state_hash) and [`audit`](Self::audit)).
    splits: u64,
    merges: u64,
    compactions: u64,
}

/// Allocator churn counters for the telemetry layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocCounters {
    /// Blocks split in half on the alloc path.
    pub splits: u64,
    /// Buddy pairs coalesced on the free path.
    pub merges: u64,
    /// Successful `make_contig` compaction passes.
    pub compactions: u64,
}

/// Default maximum block order (2^10 frames = 4 MiB), matching Linux.
pub const MAX_ORDER: u8 = 10;

impl BuddyAllocator {
    /// Create an allocator managing `frames` frames, all initially free,
    /// with the default [`MAX_ORDER`].
    pub fn new(frames: u64) -> Self {
        Self::with_max_order(frames, MAX_ORDER)
    }

    /// Create an allocator with a custom maximum order.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero or `max_order > 24`.
    pub fn with_max_order(frames: u64, max_order: u8) -> Self {
        assert!(frames > 0, "allocator needs at least one frame");
        assert!(max_order <= 24, "max order unreasonably large");
        let mut a = BuddyAllocator {
            free_lists: vec![BTreeSet::new(); max_order as usize + 1],
            state: vec![FrameState::Allocated(FrameKind::Reserved); frames as usize],
            free_frames: 0,
            max_order,
            splits: 0,
            merges: 0,
            compactions: 0,
        };
        a.add_free_range(0, frames);
        for f in 0..frames {
            a.state[f as usize] = FrameState::Free;
        }
        a.free_frames = frames;
        // Seeding the free lists is not churn.
        a.merges = 0;
        a
    }

    /// Lifetime split/merge/compaction counts (telemetry).
    pub fn alloc_counters(&self) -> AllocCounters {
        AllocCounters {
            splits: self.splits,
            merges: self.merges,
            compactions: self.compactions,
        }
    }

    /// Record one successful compaction pass (called by `compact`).
    pub(crate) fn note_compaction(&mut self) {
        self.compactions += 1;
    }

    /// Total number of frames managed.
    #[inline]
    pub fn total_frames(&self) -> u64 {
        self.state.len() as u64
    }

    /// Number of currently free frames.
    #[inline]
    pub fn free_frames(&self) -> u64 {
        self.free_frames
    }

    /// Number of free blocks across all orders.
    pub fn free_block_count(&self) -> u64 {
        self.free_lists.iter().map(|l| l.len() as u64).sum()
    }

    /// Number of free blocks of exactly the given order.
    pub fn free_blocks_of_order(&self, order: u8) -> u64 {
        self.free_lists
            .get(order as usize)
            .map_or(0, |l| l.len() as u64)
    }

    /// Size (in frames) of the largest free block.
    pub fn largest_free_block(&self) -> u64 {
        for order in (0..=self.max_order).rev() {
            if !self.free_lists[order as usize].is_empty() {
                return 1 << order;
            }
        }
        0
    }

    /// State of a frame.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` is out of range.
    #[inline]
    pub fn frame_state(&self, pfn: Pfn) -> FrameState {
        self.state[pfn.0 as usize]
    }

    /// Count of allocated frames of a given kind (used by the §6.3
    /// page-table memory-overhead experiment).
    pub fn allocated_of_kind(&self, kind: FrameKind) -> u64 {
        self.state
            .iter()
            .filter(|s| **s == FrameState::Allocated(kind))
            .count() as u64
    }

    /// Allocate a naturally aligned block of `2^order` frames.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] if no block of sufficient order is
    /// free.
    pub fn alloc_order(&mut self, order: u8, kind: FrameKind) -> Result<Pfn> {
        if order > self.max_order {
            return Err(MemError::OrderTooLarge {
                order,
                max: self.max_order,
            });
        }
        let mut found = None;
        for o in order..=self.max_order {
            if let Some(&head) = self.free_lists[o as usize].iter().next() {
                found = Some((o, head));
                break;
            }
        }
        let (mut o, head) = found.ok_or(MemError::OutOfMemory)?;
        self.free_lists[o as usize].remove(&head);
        // Split down to the requested order, returning upper halves to the
        // free lists.
        while o > order {
            o -= 1;
            let upper = head + (1 << o);
            self.free_lists[o as usize].insert(upper);
            self.splits += 1;
        }
        let n = 1u64 << order;
        for f in head..head + n {
            self.state[f as usize] = FrameState::Allocated(kind);
        }
        self.free_frames -= n;
        Ok(Pfn(head))
    }

    /// Free a block previously returned by [`alloc_order`](Self::alloc_order).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidFree`] if the block is not fully allocated
    /// or is misaligned for its order.
    pub fn free_order(&mut self, pfn: Pfn, order: u8) -> Result<()> {
        let n = 1u64 << order;
        self.check_allocated_run(pfn, n)?;
        if pfn.0 & (n - 1) != 0 {
            return Err(MemError::InvalidFree { pfn: pfn.0 });
        }
        for f in pfn.0..pfn.0 + n {
            self.state[f as usize] = FrameState::Free;
        }
        self.free_frames += n;
        self.insert_and_merge(pfn.0, order);
        Ok(())
    }

    /// Allocate `n` physically contiguous frames (not necessarily a
    /// power-of-two block) — the `alloc_contig_pages` analog used for TEAs.
    ///
    /// First tries a buddy block of the covering order; if that fails, scans
    /// for any contiguous free run of length `n` and carves it out.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoContiguousRun`] when no free run of length `n`
    /// exists (the caller may compact and retry, or split the request —
    /// paper §4.2.2).
    pub fn alloc_contig(&mut self, n: u64, kind: FrameKind) -> Result<Pfn> {
        if n == 0 {
            return Err(MemError::ZeroSized);
        }
        if n > self.free_frames {
            return Err(MemError::NoContiguousRun { frames: n });
        }
        // Fast path: a single buddy block covers the request.
        let order = covering_order(n);
        if order <= self.max_order {
            if let Ok(head) = self.alloc_order(order, kind) {
                // Return the unused tail of the block.
                let excess = (1u64 << order) - n;
                if excess > 0 {
                    self.free_run_internal(head.0 + n, excess);
                }
                return Ok(head);
            }
        }
        // Slow path: scan for a free run of length n.
        let start = self
            .find_free_run(n)
            .ok_or(MemError::NoContiguousRun { frames: n })?;
        self.reserve_range(start, n, kind)?;
        Ok(Pfn(start))
    }

    /// Free `n` contiguous frames starting at `pfn`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidFree`] if any frame in the run is not
    /// allocated.
    pub fn free_contig(&mut self, pfn: Pfn, n: u64) -> Result<()> {
        if n == 0 {
            return Err(MemError::ZeroSized);
        }
        self.check_allocated_run(pfn, n)?;
        for f in pfn.0..pfn.0 + n {
            self.state[f as usize] = FrameState::Free;
        }
        self.free_frames += n;
        self.free_run_internal_no_state(pfn.0, n);
        Ok(())
    }

    /// Try to grow an existing contiguous allocation in place by `extra`
    /// frames (TEA in-place expansion, paper §4.3).
    ///
    /// On success the frames `[pfn+n, pfn+n+extra)` become allocated with
    /// the given kind.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoContiguousRun`] if the frames just above the
    /// run are not all free.
    pub fn expand_in_place(&mut self, pfn: Pfn, n: u64, extra: u64, kind: FrameKind) -> Result<()> {
        let start = pfn.0 + n;
        let end = start + extra;
        if end > self.total_frames() {
            return Err(MemError::NoContiguousRun { frames: extra });
        }
        for f in start..end {
            if self.state[f as usize] != FrameState::Free {
                return Err(MemError::NoContiguousRun { frames: extra });
            }
        }
        self.reserve_range(start, extra, kind)
    }

    /// Whether every frame in `[pfn, pfn+n)` is free.
    pub fn range_is_free(&self, pfn: Pfn, n: u64) -> bool {
        let end = pfn.0 + n;
        end <= self.total_frames()
            && (pfn.0..end).all(|f| self.state[f as usize] == FrameState::Free)
    }

    /// Find the lowest free run of `n` frames, if any.
    pub fn find_free_run(&self, n: u64) -> Option<u64> {
        let total = self.total_frames();
        let mut run_start = 0u64;
        let mut run_len = 0u64;
        for f in 0..total {
            if self.state[f as usize] == FrameState::Free {
                if run_len == 0 {
                    run_start = f;
                }
                run_len += 1;
                if run_len >= n {
                    return Some(run_start);
                }
            } else {
                run_len = 0;
            }
        }
        None
    }

    /// Reserve an exact frame range that is currently free, carving it out
    /// of whatever free blocks cover it.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RangeNotFree`] if any frame in the range is
    /// already allocated.
    pub fn reserve_range(&mut self, start: u64, n: u64, kind: FrameKind) -> Result<()> {
        let end = start + n;
        if end > self.total_frames() {
            return Err(MemError::RangeNotFree { pfn: start });
        }
        for f in start..end {
            if self.state[f as usize] != FrameState::Free {
                return Err(MemError::RangeNotFree { pfn: f });
            }
        }
        // Remove every free block overlapping [start, end); re-add the
        // portions that fall outside.
        let mut cursor = start;
        while cursor < end {
            let (head, order) = self
                .containing_free_block(cursor)
                .expect("frame marked free must belong to a free block");
            self.free_lists[order as usize].remove(&head);
            let block_end = head + (1 << order);
            if head < start {
                self.add_free_range(head, start - head);
            }
            if block_end > end {
                self.add_free_range(end, block_end - end);
            }
            cursor = block_end;
        }
        for f in start..end {
            self.state[f as usize] = FrameState::Allocated(kind);
        }
        self.free_frames -= n;
        Ok(())
    }

    /// Allocate one frame at a pseudo-random position (long-running
    /// systems do not hand out compact physical memory; guest physical
    /// layouts in particular are spread over all of RAM, which is what
    /// defeats gPA-indexed MMU caches at scale). Probes a few LCG
    /// positions and falls back to an ordinary allocation.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] when no frame is free.
    pub fn alloc_single_spread(&mut self, kind: FrameKind, cursor: &mut u64) -> Result<Pfn> {
        let total = self.total_frames();
        for _ in 0..16 {
            *cursor = cursor
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let f = (*cursor >> 11) % total;
            if self.frame_state(Pfn(f)) == FrameState::Free {
                return self.reserve_single(f, kind);
            }
        }
        self.alloc_order(0, kind)
    }

    /// Allocate a naturally aligned `2^order` block at a pseudo-random
    /// position (see [`alloc_single_spread`](Self::alloc_single_spread)).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] when no block is free.
    pub fn alloc_block_spread(&mut self, order: u8, kind: FrameKind, cursor: &mut u64) -> Result<Pfn> {
        let n = 1u64 << order;
        let total = self.total_frames();
        if total >= n {
            for _ in 0..16 {
                *cursor = cursor
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let f = ((*cursor >> 11) % (total - n + 1)) & !(n - 1);
                if self.range_is_free(Pfn(f), n) {
                    self.reserve_range(f, n, kind)?;
                    return Ok(Pfn(f));
                }
            }
        }
        self.alloc_order(order, kind)
    }

    /// Reserve one specific free frame and return it.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RangeNotFree`] if the frame is already allocated.
    pub fn reserve_single(&mut self, pfn: u64, kind: FrameKind) -> Result<Pfn> {
        self.reserve_range(pfn, 1, kind)?;
        Ok(Pfn(pfn))
    }

    /// Relocate a single movable frame: copy `src`'s role to a freshly
    /// allocated frame and free `src`. Returns the destination frame.
    ///
    /// The caller is responsible for updating any page tables that pointed
    /// at `src` (the OS layer keeps the reverse map).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NotMovable`] if `src` is free or pinned, or
    /// [`MemError::OutOfMemory`] if no destination frame exists.
    pub fn relocate_frame(&mut self, src: Pfn) -> Result<Pfn> {
        let kind = match self.frame_state(src) {
            FrameState::Allocated(k) if k.movable() => k,
            _ => return Err(MemError::NotMovable { pfn: src.0 }),
        };
        let dst = self.alloc_order(0, kind)?;
        self.free_order(src, 0)?;
        Ok(dst)
    }

    /// Check every structural invariant of the allocator and return a
    /// description of the first violation found.
    ///
    /// Audited invariants (the oracle's allocator layer):
    /// - the incremental `free_frames` counter matches the per-frame state;
    /// - every listed free block is in range, naturally aligned for its
    ///   order, and covers only `Free` frames;
    /// - no frame is covered by two listed free blocks (no overlap);
    /// - every `Free` frame belongs to exactly one listed free block
    ///   (free + used == total, with nothing leaked);
    /// - no two mergeable buddies are both listed at the same order
    ///   (eager merging actually happened).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated invariant.
    pub fn audit(&self) -> std::result::Result<(), String> {
        let total = self.total_frames();
        let counted = self
            .state
            .iter()
            .filter(|s| **s == FrameState::Free)
            .count() as u64;
        if counted != self.free_frames {
            return Err(format!(
                "free_frames counter {} != {} frames marked Free",
                self.free_frames, counted
            ));
        }
        // 0 = uncovered, 1 = covered by one block.
        let mut covered = vec![false; total as usize];
        for (order, list) in self.free_lists.iter().enumerate() {
            let n = 1u64 << order;
            for &head in list {
                if head & (n - 1) != 0 {
                    return Err(format!("free block {head} misaligned for order {order}"));
                }
                if head + n > total {
                    return Err(format!(
                        "free block {head} order {order} extends past total {total}"
                    ));
                }
                for f in head..head + n {
                    if self.state[f as usize] != FrameState::Free {
                        return Err(format!(
                            "frame {f} in free block {head} order {order} is allocated"
                        ));
                    }
                    if covered[f as usize] {
                        return Err(format!("frame {f} covered by two free blocks"));
                    }
                    covered[f as usize] = true;
                }
                // Eager merging: the buddy of a listed block must not also
                // be listed at the same (mergeable) order.
                if (order as u8) < self.max_order {
                    let buddy = head ^ n;
                    if buddy + n <= total && list.contains(&buddy) && head < buddy {
                        return Err(format!(
                            "buddies {head} and {buddy} both free at order {order} (unmerged)"
                        ));
                    }
                }
            }
        }
        for f in 0..total {
            if (self.state[f as usize] == FrameState::Free) != covered[f as usize] {
                return Err(format!(
                    "frame {f}: state {:?} disagrees with free-list coverage {}",
                    self.state[f as usize], covered[f as usize]
                ));
            }
        }
        Ok(())
    }

    /// FNV-1a hash over the full per-frame state sequence — a cheap
    /// fingerprint of the allocator's end state, used by the seeded
    /// determinism tests (two identically seeded runs must agree).
    pub fn state_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for s in &self.state {
            let byte: u8 = match s {
                FrameState::Free => 0,
                FrameState::Allocated(FrameKind::Data) => 1,
                FrameState::Allocated(FrameKind::HugeData) => 2,
                FrameState::Allocated(FrameKind::PageTable) => 3,
                FrameState::Allocated(FrameKind::Tea) => 4,
                FrameState::Allocated(FrameKind::Reserved) => 5,
            };
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    // ---- internals -----------------------------------------------------

    fn check_allocated_run(&self, pfn: Pfn, n: u64) -> Result<()> {
        let end = pfn.0 + n;
        if end > self.total_frames() {
            return Err(MemError::InvalidFree { pfn: pfn.0 });
        }
        for f in pfn.0..end {
            match self.state[f as usize] {
                FrameState::Allocated(FrameKind::Reserved) | FrameState::Free => {
                    return Err(MemError::InvalidFree { pfn: f })
                }
                FrameState::Allocated(_) => {}
            }
        }
        Ok(())
    }

    /// Find the free block (head, order) containing frame `f`.
    fn containing_free_block(&self, f: u64) -> Option<(u64, u8)> {
        for order in 0..=self.max_order {
            let head = f & !((1u64 << order) - 1);
            if self.free_lists[order as usize].contains(&head) {
                return Some((head, order));
            }
        }
        None
    }

    /// Mark an allocated run free in the free lists (state already updated).
    fn free_run_internal_no_state(&mut self, start: u64, n: u64) {
        self.add_free_range(start, n);
    }

    /// Free a run whose state still says allocated (internal trimming path).
    fn free_run_internal(&mut self, start: u64, n: u64) {
        for f in start..start + n {
            self.state[f as usize] = FrameState::Free;
        }
        self.free_frames += n;
        self.add_free_range(start, n);
    }

    /// Insert a free range as maximal naturally aligned blocks, merging
    /// buddies as we go.
    fn add_free_range(&mut self, mut start: u64, mut n: u64) {
        while n > 0 {
            let align_order = if start == 0 {
                self.max_order
            } else {
                (start.trailing_zeros() as u8).min(self.max_order)
            };
            let size_order = (63 - n.leading_zeros() as u8).min(self.max_order);
            let order = align_order.min(size_order);
            self.insert_and_merge(start, order);
            let sz = 1u64 << order;
            start += sz;
            n -= sz;
        }
    }

    /// Insert a block and merge it with its buddy while possible.
    fn insert_and_merge(&mut self, mut head: u64, mut order: u8) {
        while order < self.max_order {
            let buddy = head ^ (1u64 << order);
            if buddy + (1 << order) <= self.total_frames()
                && self.free_lists[order as usize].remove(&buddy)
            {
                head = head.min(buddy);
                order += 1;
                self.merges += 1;
            } else {
                break;
            }
        }
        self.free_lists[order as usize].insert(head);
    }
}

/// Smallest order whose block covers `n` frames.
#[inline]
pub fn covering_order(n: u64) -> u8 {
    debug_assert!(n > 0);
    if n == 1 {
        0
    } else {
        (64 - (n - 1).leading_zeros()) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covering_order_values() {
        assert_eq!(covering_order(1), 0);
        assert_eq!(covering_order(2), 1);
        assert_eq!(covering_order(3), 2);
        assert_eq!(covering_order(4), 2);
        assert_eq!(covering_order(5), 3);
        assert_eq!(covering_order(1024), 10);
        assert_eq!(covering_order(1025), 11);
    }

    #[test]
    fn fresh_allocator_is_fully_free() {
        let a = BuddyAllocator::new(4096);
        assert_eq!(a.free_frames(), 4096);
        assert_eq!(a.largest_free_block(), 1024);
        assert_eq!(a.free_blocks_of_order(MAX_ORDER), 4);
    }

    #[test]
    fn non_power_of_two_total_builds_mixed_blocks() {
        let a = BuddyAllocator::new(1000);
        assert_eq!(a.free_frames(), 1000);
        // 1000 = 512 + 256 + 128 + 64 + 32 + 8
        assert_eq!(a.largest_free_block(), 512);
    }

    #[test]
    fn alloc_free_roundtrip_restores_blocks() {
        let mut a = BuddyAllocator::new(1024);
        let p = a.alloc_order(3, FrameKind::Data).unwrap();
        assert_eq!(a.free_frames(), 1024 - 8);
        a.free_order(p, 3).unwrap();
        assert_eq!(a.free_frames(), 1024);
        assert_eq!(a.free_blocks_of_order(MAX_ORDER), 1);
    }

    #[test]
    fn split_and_merge_sequence() {
        let mut a = BuddyAllocator::new(16);
        let p0 = a.alloc_order(0, FrameKind::Data).unwrap();
        let p1 = a.alloc_order(0, FrameKind::Data).unwrap();
        assert_ne!(p0, p1);
        a.free_order(p0, 0).unwrap();
        a.free_order(p1, 0).unwrap();
        // Everything should merge back into one block of order 4.
        assert_eq!(a.free_blocks_of_order(4), 1);
    }

    #[test]
    fn double_free_is_rejected() {
        let mut a = BuddyAllocator::new(64);
        let p = a.alloc_order(0, FrameKind::Data).unwrap();
        a.free_order(p, 0).unwrap();
        assert!(matches!(a.free_order(p, 0), Err(MemError::InvalidFree { .. })));
    }

    #[test]
    fn misaligned_free_is_rejected() {
        let mut a = BuddyAllocator::new(64);
        let _ = a.alloc_order(2, FrameKind::Data).unwrap();
        assert!(matches!(
            a.free_order(Pfn(1), 2),
            Err(MemError::InvalidFree { .. })
        ));
    }

    #[test]
    fn contig_alloc_exact_run() {
        let mut a = BuddyAllocator::new(1024);
        let p = a.alloc_contig(100, FrameKind::Tea).unwrap();
        assert_eq!(a.free_frames(), 924);
        for f in p.0..p.0 + 100 {
            assert_eq!(a.frame_state(Pfn(f)), FrameState::Allocated(FrameKind::Tea));
        }
        a.free_contig(p, 100).unwrap();
        assert_eq!(a.free_frames(), 1024);
        assert_eq!(a.free_blocks_of_order(MAX_ORDER), 1);
    }

    #[test]
    fn contig_alloc_larger_than_max_order_block() {
        let mut a = BuddyAllocator::new(8192);
        // 3000 frames > 1024 (max-order block) forces the scan path.
        let p = a.alloc_contig(3000, FrameKind::Tea).unwrap();
        assert_eq!(a.free_frames(), 8192 - 3000);
        a.free_contig(p, 3000).unwrap();
        assert_eq!(a.free_frames(), 8192);
    }

    #[test]
    fn contig_alloc_fails_under_fragmentation() {
        let mut a = BuddyAllocator::new(64);
        // Allocate everything as single frames, then free every other one.
        let frames: Vec<_> = (0..64)
            .map(|_| a.alloc_order(0, FrameKind::Data).unwrap())
            .collect();
        for (i, p) in frames.iter().enumerate() {
            if i % 2 == 0 {
                a.free_order(*p, 0).unwrap();
            }
        }
        assert_eq!(a.free_frames(), 32);
        assert!(matches!(
            a.alloc_contig(2, FrameKind::Tea),
            Err(MemError::NoContiguousRun { .. })
        ));
        // Single frames still work.
        assert!(a.alloc_contig(1, FrameKind::Tea).is_ok());
    }

    #[test]
    fn expand_in_place_when_room_above() {
        let mut a = BuddyAllocator::new(1024);
        let p = a.alloc_contig(10, FrameKind::Tea).unwrap();
        a.expand_in_place(p, 10, 5, FrameKind::Tea).unwrap();
        for f in p.0..p.0 + 15 {
            assert_eq!(a.frame_state(Pfn(f)), FrameState::Allocated(FrameKind::Tea));
        }
        a.free_contig(p, 15).unwrap();
        assert_eq!(a.free_frames(), 1024);
    }

    #[test]
    fn expand_in_place_blocked_by_neighbor() {
        let mut a = BuddyAllocator::new(64);
        let p = a.alloc_contig(8, FrameKind::Tea).unwrap();
        // Allocate the frame right above the run.
        a.reserve_range(p.0 + 8, 1, FrameKind::Data).unwrap();
        assert!(matches!(
            a.expand_in_place(p, 8, 1, FrameKind::Tea),
            Err(MemError::NoContiguousRun { .. })
        ));
    }

    #[test]
    fn reserve_range_rejects_allocated_frames() {
        let mut a = BuddyAllocator::new(64);
        let p = a.alloc_order(0, FrameKind::Data).unwrap();
        assert!(matches!(
            a.reserve_range(p.0, 1, FrameKind::Tea),
            Err(MemError::RangeNotFree { .. })
        ));
    }

    #[test]
    fn relocate_moves_only_movable_frames() {
        let mut a = BuddyAllocator::new(64);
        let data = a.alloc_order(0, FrameKind::Data).unwrap();
        let tea = a.alloc_contig(1, FrameKind::Tea).unwrap();
        let dst = a.relocate_frame(data).unwrap();
        assert_ne!(dst, data);
        assert_eq!(a.frame_state(data), FrameState::Free);
        assert!(matches!(
            a.relocate_frame(tea),
            Err(MemError::NotMovable { .. })
        ));
    }

    #[test]
    fn kind_accounting() {
        let mut a = BuddyAllocator::new(256);
        a.alloc_contig(10, FrameKind::Tea).unwrap();
        a.alloc_order(0, FrameKind::PageTable).unwrap();
        a.alloc_order(0, FrameKind::PageTable).unwrap();
        assert_eq!(a.allocated_of_kind(FrameKind::Tea), 10);
        assert_eq!(a.allocated_of_kind(FrameKind::PageTable), 2);
        assert_eq!(a.allocated_of_kind(FrameKind::Data), 0);
    }

    #[test]
    fn audit_accepts_fresh_and_churned_allocators() {
        let mut a = BuddyAllocator::new(1000);
        a.audit().unwrap();
        let p = a.alloc_contig(100, FrameKind::Tea).unwrap();
        let q = a.alloc_order(3, FrameKind::Data).unwrap();
        a.audit().unwrap();
        a.free_order(q, 3).unwrap();
        a.free_contig(p, 100).unwrap();
        a.audit().unwrap();
    }

    #[test]
    fn audit_catches_counter_drift() {
        let mut a = BuddyAllocator::new(64);
        a.free_frames -= 1; // simulate a lost frame
        assert!(a.audit().unwrap_err().contains("free_frames counter"));
    }

    #[test]
    fn audit_catches_unmerged_buddies() {
        let mut a = BuddyAllocator::new(64);
        let p = a.alloc_order(1, FrameKind::Data).unwrap();
        // Free the two halves without merging (bypass insert_and_merge).
        a.state[p.0 as usize] = FrameState::Free;
        a.state[p.0 as usize + 1] = FrameState::Free;
        a.free_frames += 2;
        a.free_lists[0].insert(p.0);
        a.free_lists[0].insert(p.0 + 1);
        assert!(a.audit().unwrap_err().contains("unmerged"));
    }

    #[test]
    fn audit_catches_leaked_free_frame() {
        let mut a = BuddyAllocator::new(64);
        let p = a.alloc_order(0, FrameKind::Data).unwrap();
        // Frame marked free but in no free list.
        a.state[p.0 as usize] = FrameState::Free;
        a.free_frames += 1;
        assert!(a.audit().is_err());
    }

    #[test]
    fn state_hash_tracks_allocation_state() {
        let mut a = BuddyAllocator::new(256);
        let h0 = a.state_hash();
        let p = a.alloc_order(0, FrameKind::Data).unwrap();
        assert_ne!(a.state_hash(), h0);
        a.free_order(p, 0).unwrap();
        assert_eq!(a.state_hash(), h0);
        // Kind matters, not just allocated-ness.
        let _ = a.reserve_single(p.0, FrameKind::Tea).unwrap();
        let h_tea = a.state_hash();
        let mut b = BuddyAllocator::new(256);
        let _ = b.reserve_single(p.0, FrameKind::Data).unwrap();
        assert_ne!(b.state_hash(), h_tea);
    }

    #[test]
    fn alloc_counters_track_churn_but_not_state_hash() {
        let mut a = BuddyAllocator::new(256);
        assert_eq!(a.alloc_counters(), AllocCounters::default());
        let h0 = a.state_hash();
        // One order-0 alloc from a pristine max_order=8 block: 8 splits.
        let p = a.alloc_order(0, FrameKind::Data).unwrap();
        assert_eq!(a.alloc_counters().splits, 8);
        assert_eq!(a.alloc_counters().merges, 0);
        // Freeing it coalesces all the way back: 8 merges.
        a.free_order(p, 0).unwrap();
        assert_eq!(a.alloc_counters().merges, 8);
        // Counters are telemetry, not allocator state: the hash is back
        // to the pristine value even though the counters moved.
        assert_eq!(a.state_hash(), h0);
    }

    #[test]
    fn zero_sized_requests_error() {
        let mut a = BuddyAllocator::new(64);
        assert!(matches!(
            a.alloc_contig(0, FrameKind::Tea),
            Err(MemError::ZeroSized)
        ));
        assert!(matches!(
            a.free_contig(Pfn(0), 0),
            Err(MemError::ZeroSized)
        ));
    }
}
