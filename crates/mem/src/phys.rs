//! Word-addressable physical memory built on the buddy allocator.
//!
//! Page tables, TEAs and hash-based page tables (ECPT) all live *in*
//! simulated physical memory: every PTE has a real physical address, which
//! is what lets the cache hierarchy decide whether a given PTE fetch hits
//! in L2, LLC, or goes to DRAM. [`PhysMemory`] provides 8-byte word
//! reads/writes keyed by [`PhysAddr`] with lazily materialized frame
//! contents (frames that never hold translation data cost nothing).

use crate::addr::{Pfn, PhysAddr, ENTRIES_PER_TABLE, PAGE_SHIFT};
use crate::buddy::{BuddyAllocator, FrameKind};
use crate::Result;
use std::collections::HashMap;

/// Word-level access plus frame allocation: the interface page tables are
/// built against.
///
/// [`PhysMemory`] implements it directly (host physical memory); the
/// virtualization layer implements it for guest-physical views, so the
/// same radix page-table code can build guest page tables whose
/// storage is transparently redirected through the host mapping.
pub trait MemoryOps {
    /// Read the 8-byte word at `addr` (must be 8-byte aligned).
    fn read_word(&self, addr: PhysAddr) -> u64;
    /// Write the 8-byte word at `addr` (must be 8-byte aligned).
    fn write_word(&mut self, addr: PhysAddr, value: u64);
    /// Read the word at `addr` and, if the closure returns a new value,
    /// write it back. Implementations may fuse the two into a single
    /// page lookup; the provided default composes [`MemoryOps::read_word`]
    /// and [`MemoryOps::write_word`]. Returns the value read.
    fn rmw_word(&mut self, addr: PhysAddr, f: impl FnOnce(u64) -> Option<u64>) -> u64
    where
        Self: Sized,
    {
        let old = self.read_word(addr);
        if let Some(new) = f(old) {
            self.write_word(addr, new);
        }
        old
    }
    /// Allocate one zeroed frame for the given purpose.
    ///
    /// # Errors
    ///
    /// Returns an allocator error when memory is exhausted.
    fn alloc_zeroed_frame(&mut self, kind: FrameKind) -> Result<Pfn>;
    /// Free one frame.
    ///
    /// # Errors
    ///
    /// Returns an allocator error on invalid frees.
    fn free_frame(&mut self, pfn: Pfn) -> Result<()>;
    /// Copy a frame's full contents.
    fn copy_frame(&mut self, src: Pfn, dst: Pfn);
}

impl MemoryOps for PhysMemory {
    fn read_word(&self, addr: PhysAddr) -> u64 {
        PhysMemory::read_word(self, addr)
    }
    fn write_word(&mut self, addr: PhysAddr, value: u64) {
        PhysMemory::write_word(self, addr, value)
    }
    fn rmw_word(&mut self, addr: PhysAddr, f: impl FnOnce(u64) -> Option<u64>) -> u64 {
        PhysMemory::rmw_word(self, addr, f)
    }
    fn alloc_zeroed_frame(&mut self, kind: FrameKind) -> Result<Pfn> {
        PhysMemory::alloc_zeroed_frame(self, kind)
    }
    fn free_frame(&mut self, pfn: Pfn) -> Result<()> {
        PhysMemory::free_frame(self, pfn)
    }
    fn copy_frame(&mut self, src: Pfn, dst: Pfn) {
        PhysMemory::copy_frame(self, src, dst)
    }
}

/// Physical memory: a buddy allocator plus sparse 8-byte-word contents.
///
/// # Examples
///
/// ```
/// use dmt_mem::phys::PhysMemory;
/// use dmt_mem::buddy::FrameKind;
/// use dmt_mem::addr::PhysAddr;
/// # fn main() -> Result<(), dmt_mem::MemError> {
/// let mut pm = PhysMemory::new_frames(1024);
/// let frame = pm.alloc_frame(FrameKind::PageTable)?;
/// let slot = PhysAddr::from_pfn(frame) + 8 * 42;
/// pm.write_word(slot, 0xdead_beef);
/// assert_eq!(pm.read_word(slot), 0xdead_beef);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PhysMemory {
    buddy: BuddyAllocator,
    /// pfn -> 512 words of frame content, materialized on first write.
    words: HashMap<u64, Box<[u64; ENTRIES_PER_TABLE as usize]>>,
}

impl PhysMemory {
    /// Create physical memory with the given number of 4 KiB frames.
    pub fn new_frames(frames: u64) -> Self {
        PhysMemory {
            buddy: BuddyAllocator::new(frames),
            words: HashMap::new(),
        }
    }

    /// Create physical memory of the given byte size (rounded down to
    /// frames).
    pub fn new_bytes(bytes: u64) -> Self {
        Self::new_frames(bytes >> PAGE_SHIFT)
    }

    /// The underlying buddy allocator.
    pub fn buddy(&self) -> &BuddyAllocator {
        &self.buddy
    }

    /// Mutable access to the underlying buddy allocator.
    pub fn buddy_mut(&mut self) -> &mut BuddyAllocator {
        &mut self.buddy
    }

    /// Allocate one frame.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::MemError::OutOfMemory`].
    pub fn alloc_frame(&mut self, kind: FrameKind) -> Result<Pfn> {
        self.buddy.alloc_order(0, kind)
    }

    /// Allocate a zeroed frame (used for fresh page-table pages).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::MemError::OutOfMemory`].
    pub fn alloc_zeroed_frame(&mut self, kind: FrameKind) -> Result<Pfn> {
        let pfn = self.buddy.alloc_order(0, kind)?;
        self.words.remove(&pfn.0);
        Ok(pfn)
    }

    /// Allocate `n` contiguous frames (the `alloc_contig_pages` analog).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::MemError::NoContiguousRun`].
    pub fn alloc_contig(&mut self, n: u64, kind: FrameKind) -> Result<Pfn> {
        self.buddy.alloc_contig(n, kind)
    }

    /// Free one frame, dropping its contents.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::MemError::InvalidFree`].
    pub fn free_frame(&mut self, pfn: Pfn) -> Result<()> {
        self.buddy.free_order(pfn, 0)?;
        self.words.remove(&pfn.0);
        Ok(())
    }

    /// Free `n` contiguous frames, dropping their contents.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::MemError::InvalidFree`].
    pub fn free_contig(&mut self, pfn: Pfn, n: u64) -> Result<()> {
        self.buddy.free_contig(pfn, n)?;
        for f in pfn.0..pfn.0 + n {
            self.words.remove(&f);
        }
        Ok(())
    }

    /// Read the 8-byte word at a physical address (must be 8-byte aligned).
    ///
    /// Unwritten words read as zero, like freshly zeroed memory.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn read_word(&self, addr: PhysAddr) -> u64 {
        assert_eq!(addr.0 % 8, 0, "unaligned word read at {addr}");
        let pfn = addr.pfn().0;
        let idx = (addr.page_offset() / 8) as usize;
        self.words.get(&pfn).map_or(0, |w| w[idx])
    }

    /// Write the 8-byte word at a physical address (must be 8-byte aligned).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn write_word(&mut self, addr: PhysAddr, value: u64) {
        assert_eq!(addr.0 % 8, 0, "unaligned word write at {addr}");
        let pfn = addr.pfn().0;
        let idx = (addr.page_offset() / 8) as usize;
        self.words
            .entry(pfn)
            .or_insert_with(|| Box::new([0u64; ENTRIES_PER_TABLE as usize]))[idx] = value;
    }

    /// Fused read-modify-write: one page lookup serves both the read
    /// and (when the closure asks for it) the write-back — half the
    /// hashing of a `read_word` + `write_word` pair on the same slot.
    /// Returns the value read; unwritten words read as zero.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn rmw_word(&mut self, addr: PhysAddr, f: impl FnOnce(u64) -> Option<u64>) -> u64 {
        assert_eq!(addr.0 % 8, 0, "unaligned word rmw at {addr}");
        let pfn = addr.pfn().0;
        let idx = (addr.page_offset() / 8) as usize;
        match self.words.get_mut(&pfn) {
            Some(w) => {
                let old = w[idx];
                if let Some(new) = f(old) {
                    w[idx] = new;
                }
                old
            }
            None => {
                if let Some(new) = f(0) {
                    self.words
                        .entry(pfn)
                        .or_insert_with(|| Box::new([0u64; ENTRIES_PER_TABLE as usize]))[idx] = new;
                }
                0
            }
        }
    }

    /// Zero a frame's contents (e.g. when recycling a guest frame whose
    /// backing host frame stays allocated).
    pub fn zero_frame(&mut self, pfn: Pfn) {
        self.words.remove(&pfn.0);
    }

    /// Copy the full contents of one frame to another (TEA migration,
    /// compaction).
    pub fn copy_frame(&mut self, src: Pfn, dst: Pfn) {
        match self.words.get(&src.0).cloned() {
            Some(content) => {
                self.words.insert(dst.0, content);
            }
            None => {
                self.words.remove(&dst.0);
            }
        }
    }

    /// Bytes of physical memory currently allocated for the given kind.
    pub fn bytes_of_kind(&self, kind: FrameKind) -> u64 {
        self.buddy.allocated_of_kind(kind) << PAGE_SHIFT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;

    #[test]
    fn words_default_to_zero() {
        let mut pm = PhysMemory::new_frames(16);
        let f = pm.alloc_frame(FrameKind::PageTable).unwrap();
        assert_eq!(pm.read_word(PhysAddr::from_pfn(f)), 0);
    }

    #[test]
    fn read_back_what_was_written() {
        let mut pm = PhysMemory::new_frames(16);
        let f = pm.alloc_frame(FrameKind::PageTable).unwrap();
        let base = PhysAddr::from_pfn(f);
        for i in 0..512u64 {
            pm.write_word(base + i * 8, i * 3);
        }
        for i in 0..512u64 {
            assert_eq!(pm.read_word(base + i * 8), i * 3);
        }
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_read_panics() {
        let pm = PhysMemory::new_frames(16);
        pm.read_word(PhysAddr(4));
    }

    #[test]
    fn freeing_drops_contents() {
        let mut pm = PhysMemory::new_frames(16);
        let f = pm.alloc_frame(FrameKind::PageTable).unwrap();
        let base = PhysAddr::from_pfn(f);
        pm.write_word(base, 99);
        pm.free_frame(f).unwrap();
        let f2 = pm.alloc_frame(FrameKind::PageTable).unwrap();
        // The recycled frame must read as zero.
        assert_eq!(pm.read_word(PhysAddr::from_pfn(f2)), 0);
    }

    #[test]
    fn copy_frame_duplicates_contents() {
        let mut pm = PhysMemory::new_frames(16);
        let a = pm.alloc_frame(FrameKind::Tea).unwrap();
        let b = pm.alloc_frame(FrameKind::Tea).unwrap();
        pm.write_word(PhysAddr::from_pfn(a) + 16, 7);
        pm.copy_frame(a, b);
        assert_eq!(pm.read_word(PhysAddr::from_pfn(b) + 16), 7);
        // Copying an empty frame clears the destination.
        let c = pm.alloc_frame(FrameKind::Tea).unwrap();
        pm.copy_frame(c, b);
        assert_eq!(pm.read_word(PhysAddr::from_pfn(b) + 16), 0);
    }

    #[test]
    fn kind_byte_accounting() {
        let mut pm = PhysMemory::new_bytes(1 << 20); // 256 frames
        pm.alloc_contig(10, FrameKind::Tea).unwrap();
        pm.alloc_frame(FrameKind::PageTable).unwrap();
        assert_eq!(pm.bytes_of_kind(FrameKind::Tea), 10 * 4096);
        assert_eq!(pm.bytes_of_kind(FrameKind::PageTable), 4096);
    }
}
