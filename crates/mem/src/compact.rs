//! Movable-page compaction (defragmentation) in service of contiguous
//! allocations.
//!
//! DMT-Linux "instructs the memory allocator to defragment the memory to
//! resolve moveable fragmentations" when a TEA allocation fails (§4.3).
//! [`make_contig`] finds a window of frames containing only free or movable
//! pages, migrates the movable ones out, and reserves the window. The
//! resulting [`Migration`] list lets the OS layer patch any page-table
//! entries that pointed at moved frames.

use crate::addr::Pfn;
use crate::buddy::{BuddyAllocator, FrameKind, FrameState};
use crate::{MemError, Result};

/// A single page migration performed during compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// Frame the contents moved from (now free or reserved for the caller).
    pub src: Pfn,
    /// Frame the contents moved to.
    pub dst: Pfn,
}

/// Outcome of a successful [`make_contig`] call.
#[derive(Debug, Clone)]
pub struct CompactionResult {
    /// First frame of the newly reserved contiguous run.
    pub start: Pfn,
    /// Migrations the caller must reflect in its page tables.
    pub migrations: Vec<Migration>,
}

/// Create a contiguous allocation of `n` frames by migrating movable pages
/// out of the cheapest eligible window, then reserving that window with the
/// given kind.
///
/// # Errors
///
/// Returns [`MemError::NoContiguousRun`] when no window of `n` frames exists
/// in which every frame is free or movable, or when there is not enough free
/// memory elsewhere to absorb the displaced pages.
pub fn make_contig(
    buddy: &mut BuddyAllocator,
    n: u64,
    kind: FrameKind,
) -> Result<CompactionResult> {
    if n == 0 {
        return Err(MemError::ZeroSized);
    }
    let total = buddy.total_frames();
    if n > total {
        return Err(MemError::NoContiguousRun { frames: n });
    }
    let start = find_window(buddy, n).ok_or(MemError::NoContiguousRun { frames: n })?;
    let end = start + n;

    // Collect movable frames that must leave the window.
    let movers: Vec<Pfn> = (start..end)
        .map(Pfn)
        .filter(|p| matches!(buddy.frame_state(*p), FrameState::Allocated(k) if k.movable()))
        .collect();

    // Check feasibility: free frames outside the window must absorb them.
    let free_inside = (start..end)
        .filter(|f| buddy.frame_state(Pfn(*f)) == FrameState::Free)
        .count() as u64;
    let free_outside = buddy.free_frames() - free_inside;
    if (movers.len() as u64) > free_outside {
        return Err(MemError::NoContiguousRun { frames: n });
    }

    let mut migrations = Vec::with_capacity(movers.len());
    // Frames we allocated but that landed inside the window; returned later.
    let mut parked = Vec::new();
    for src in movers {
        let dst = loop {
            let cand = buddy.alloc_order(0, FrameKind::Data)?;
            if cand.0 >= start && cand.0 < end {
                parked.push(cand);
            } else {
                break cand;
            }
        };
        buddy.free_order(src, 0)?;
        migrations.push(Migration { src, dst });
    }
    for p in parked {
        buddy.free_order(p, 0)?;
    }
    buddy.reserve_range(start, n, kind)?;
    buddy.note_compaction();
    Ok(CompactionResult {
        start: Pfn(start),
        migrations,
    })
}

/// Find the lowest window of `n` frames containing no unmovable allocations.
fn find_window(buddy: &BuddyAllocator, n: u64) -> Option<u64> {
    let total = buddy.total_frames();
    let mut run_start = 0u64;
    let mut run_len = 0u64;
    for f in 0..total {
        let eligible = match buddy.frame_state(Pfn(f)) {
            FrameState::Free => true,
            FrameState::Allocated(k) => k.movable(),
        };
        if eligible {
            if run_len == 0 {
                run_start = f;
            }
            run_len += 1;
            if run_len >= n {
                return Some(run_start);
            }
        } else {
            run_len = 0;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a checkerboard of movable data frames (even pfns allocated).
    fn checkerboard(frames: u64) -> BuddyAllocator {
        let mut buddy = BuddyAllocator::new(frames);
        let mut held = Vec::new();
        while buddy.free_frames() > 0 {
            held.push(buddy.alloc_order(0, FrameKind::Data).unwrap());
        }
        held.sort();
        for p in held.iter().skip(1).step_by(2) {
            buddy.free_order(*p, 0).unwrap();
        }
        buddy
    }

    #[test]
    fn compaction_creates_contiguity_from_checkerboard() {
        let mut buddy = checkerboard(256);
        assert!(buddy.alloc_contig(16, FrameKind::Tea).is_err());
        let res = make_contig(&mut buddy, 16, FrameKind::Tea).unwrap();
        assert!(!res.migrations.is_empty());
        for f in res.start.0..res.start.0 + 16 {
            assert_eq!(
                buddy.frame_state(Pfn(f)),
                FrameState::Allocated(FrameKind::Tea)
            );
        }
        // Every migration's destination lies outside the reserved window.
        for m in &res.migrations {
            assert!(m.dst.0 < res.start.0 || m.dst.0 >= res.start.0 + 16);
        }
    }

    #[test]
    fn compaction_respects_unmovable_frames() {
        let mut buddy = BuddyAllocator::new(64);
        // Pin a page-table frame every 8 frames: no window of 16 exists.
        for f in (0..64).step_by(8) {
            buddy.reserve_range(f, 1, FrameKind::PageTable).unwrap();
        }
        assert!(matches!(
            make_contig(&mut buddy, 16, FrameKind::Tea),
            Err(MemError::NoContiguousRun { .. })
        ));
        // A window of 7 fits between pins.
        let res = make_contig(&mut buddy, 7, FrameKind::Tea).unwrap();
        assert!(res.migrations.is_empty());
    }

    #[test]
    fn compaction_fails_when_memory_truly_full() {
        let mut buddy = BuddyAllocator::new(32);
        while buddy.free_frames() > 0 {
            buddy.alloc_order(0, FrameKind::Data).unwrap();
        }
        assert!(make_contig(&mut buddy, 4, FrameKind::Tea).is_err());
    }

    #[test]
    fn free_frame_count_is_conserved() {
        let mut buddy = checkerboard(128);
        let free_before = buddy.free_frames();
        let _res = make_contig(&mut buddy, 8, FrameKind::Tea).unwrap();
        // Movers swap 1:1 with free frames, so the free pool shrinks by
        // exactly the window size.
        assert_eq!(buddy.free_frames(), free_before - 8);
    }
}
