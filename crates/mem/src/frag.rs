//! Free-memory fragmentation metrics and a controllable fragmenter.
//!
//! §6.3 of the paper measures DMT's management overhead on "a highly
//! fragmented memory (using a fragmentation tool ... with a free memory
//! fragmentation index of 0.99)". [`fragmentation_index`] is the Linux
//! `extfrag_index` analog and [`Fragmenter`] is the fragmentation tool.

use crate::buddy::{BuddyAllocator, FrameKind};
use crate::Result;

/// Free-memory fragmentation index for allocations of `2^order` frames.
///
/// Follows the kernel's `fragmentation_index`: with `F` free frames split
/// into `B` free blocks, the index for a request of `2^order` frames is
/// `1 - (F / 2^order) / B`. Values near 0 mean free memory is in large
/// blocks; values near 1 mean it is shattered into many small blocks, so a
/// contiguous allocation of that order is likely to fail.
///
/// Returns 0.0 when there are no free blocks at all (that is an
/// out-of-memory situation, not a fragmentation one — same convention as
/// the kernel).
///
/// # Examples
///
/// ```
/// use dmt_mem::buddy::BuddyAllocator;
/// use dmt_mem::frag::fragmentation_index;
/// let buddy = BuddyAllocator::new(1024);
/// // One giant free block: no fragmentation at any order it can satisfy.
/// assert!(fragmentation_index(&buddy, 9) < 0.01);
/// ```
pub fn fragmentation_index(buddy: &BuddyAllocator, order: u8) -> f64 {
    let blocks = buddy.free_block_count();
    if blocks == 0 {
        return 0.0;
    }
    let free = buddy.free_frames() as f64;
    let requested = (1u64 << order) as f64;
    let idx = 1.0 - (free / requested) / blocks as f64;
    idx.max(0.0)
}

/// Drives a [`BuddyAllocator`] into a controlled state of fragmentation by
/// allocating data frames and freeing isolated singletons.
///
/// After [`Fragmenter::fragment`], every free frame is an isolated order-0
/// block, which yields a fragmentation index of `1 - 2^-order` for any
/// order — 0.998 at the 2 MiB order, matching the paper's 0.99 setup.
#[derive(Debug)]
pub struct Fragmenter {
    held: Vec<crate::addr::Pfn>,
}

impl Fragmenter {
    /// Create a fragmenter holding no frames.
    pub fn new() -> Self {
        Fragmenter { held: Vec::new() }
    }

    /// Allocate all remaining memory as data frames, then free isolated
    /// frames until roughly `free_fraction` of memory is free again.
    ///
    /// Freed frames are spaced at least two apart so they can never merge,
    /// maximizing the fragmentation index.
    ///
    /// # Errors
    ///
    /// Propagates allocator errors (should not occur on a healthy
    /// allocator).
    pub fn fragment(&mut self, buddy: &mut BuddyAllocator, free_fraction: f64) -> Result<()> {
        assert!(
            (0.0..=0.5).contains(&free_fraction),
            "isolated singletons can cover at most half of memory"
        );
        while buddy.free_frames() > 0 {
            let order = buddy.largest_free_block().trailing_zeros() as u8;
            self.held.push(buddy.alloc_order(order, FrameKind::Data)?);
            // Immediately shatter large blocks into singles.
            if order > 0 {
                let head = *self.held.last().unwrap();
                buddy.free_order(head, order)?;
                self.held.pop();
                for f in 0..(1u64 << order) {
                    self.held
                        .push(buddy.reserve_single(head.0 + f, FrameKind::Data)?);
                }
            }
        }
        let target_free = (buddy.total_frames() as f64 * free_fraction) as u64;
        // Free every other frame (in sorted order) so freed frames can
        // never merge with a buddy.
        self.held.sort();
        let mut kept = Vec::with_capacity(self.held.len());
        let mut freed = 0u64;
        for (idx, pfn) in std::mem::take(&mut self.held).into_iter().enumerate() {
            if freed < target_free && idx % 2 == 0 {
                buddy.free_order(pfn, 0)?;
                freed += 1;
            } else {
                kept.push(pfn);
            }
        }
        self.held = kept;
        Ok(())
    }

    /// Release every frame the fragmenter holds.
    ///
    /// # Errors
    ///
    /// Propagates allocator errors.
    pub fn release_all(&mut self, buddy: &mut BuddyAllocator) -> Result<()> {
        for pfn in self.held.drain(..) {
            buddy.free_order(pfn, 0)?;
        }
        Ok(())
    }

    /// Number of frames currently held by the fragmenter.
    pub fn held_frames(&self) -> usize {
        self.held.len()
    }
}

impl Default for Fragmenter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_memory_has_low_index() {
        let buddy = BuddyAllocator::new(4096);
        assert!(fragmentation_index(&buddy, 0) <= 0.0 + 1e-9);
        assert!(fragmentation_index(&buddy, 9) < 0.01);
    }

    #[test]
    fn no_free_memory_reports_zero() {
        let mut buddy = BuddyAllocator::new(64);
        while buddy.free_frames() > 0 {
            buddy.alloc_order(0, FrameKind::Data).unwrap();
        }
        assert_eq!(fragmentation_index(&buddy, 9), 0.0);
    }

    #[test]
    fn fragmenter_reaches_high_index() {
        let mut buddy = BuddyAllocator::new(4096);
        let mut fr = Fragmenter::new();
        fr.fragment(&mut buddy, 0.25).unwrap();
        // Every free frame should be an isolated singleton.
        assert_eq!(buddy.free_block_count(), buddy.free_frames());
        let idx = fragmentation_index(&buddy, 9);
        assert!(idx > 0.99, "index was {idx}");
        // Contiguous allocation beyond one frame must now fail.
        assert!(buddy.alloc_contig(2, FrameKind::Tea).is_err());
    }

    #[test]
    fn release_restores_memory() {
        let mut buddy = BuddyAllocator::new(1024);
        let mut fr = Fragmenter::new();
        fr.fragment(&mut buddy, 0.1).unwrap();
        fr.release_all(&mut buddy).unwrap();
        assert_eq!(buddy.free_frames(), 1024);
        assert!(fragmentation_index(&buddy, 9) < 0.01);
    }
}
