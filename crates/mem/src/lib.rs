//! Physical-memory substrate for the DMT reproduction.
//!
//! This crate models everything below the OS: address/page-size primitives
//! ([`addr`]), a Linux-style binary buddy allocator with contiguous
//! allocation ([`buddy`]), fragmentation metrics and a fragmenter matching
//! the paper's §6.3 methodology ([`frag`]), movable-page compaction
//! ([`compact`]), and word-addressable physical memory in which page
//! tables and Translation Entry Areas actually live ([`phys`]).
//!
//! # Example
//!
//! ```
//! use dmt_mem::phys::PhysMemory;
//! use dmt_mem::buddy::FrameKind;
//! # fn main() -> Result<(), dmt_mem::MemError> {
//! // 64 MiB of physical memory; carve a 100-frame TEA out of it.
//! let mut pm = PhysMemory::new_bytes(64 << 20);
//! let tea = pm.alloc_contig(100, FrameKind::Tea)?;
//! assert!(tea.0 + 100 <= pm.buddy().total_frames());
//! # Ok(())
//! # }
//! ```

pub mod addr;
pub mod buddy;
pub mod compact;
pub mod frag;
pub mod hash;
pub mod phys;

pub use addr::{PageSize, Pfn, PhysAddr, TransUnit, VirtAddr, Vpn};
pub use buddy::{BuddyAllocator, FrameKind, FrameState};
pub use hash::{FastMap, FastSet};
pub use phys::{MemoryOps, PhysMemory};

use core::fmt;

/// Errors produced by the physical-memory substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// No free block large enough for the requested order.
    OutOfMemory,
    /// Requested order exceeds the allocator's maximum.
    OrderTooLarge {
        /// The requested order.
        order: u8,
        /// The allocator's maximum order.
        max: u8,
    },
    /// No contiguous free run of the requested length exists.
    NoContiguousRun {
        /// Number of frames requested.
        frames: u64,
    },
    /// Attempt to free a frame that is not (fully) allocated, or a
    /// misaligned block.
    InvalidFree {
        /// Offending frame number.
        pfn: u64,
    },
    /// Attempt to reserve a range containing an allocated frame.
    RangeNotFree {
        /// First non-free frame found.
        pfn: u64,
    },
    /// Attempt to relocate a frame that is free or pinned.
    NotMovable {
        /// Offending frame number.
        pfn: u64,
    },
    /// A zero-sized allocation or free was requested.
    ZeroSized,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfMemory => write!(f, "out of physical memory"),
            MemError::OrderTooLarge { order, max } => {
                write!(f, "requested order {order} exceeds maximum {max}")
            }
            MemError::NoContiguousRun { frames } => {
                write!(f, "no contiguous run of {frames} frames available")
            }
            MemError::InvalidFree { pfn } => write!(f, "invalid free of frame {pfn:#x}"),
            MemError::RangeNotFree { pfn } => {
                write!(f, "range reservation hit allocated frame {pfn:#x}")
            }
            MemError::NotMovable { pfn } => write!(f, "frame {pfn:#x} is not movable"),
            MemError::ZeroSized => write!(f, "zero-sized request"),
        }
    }
}

impl std::error::Error for MemError {}

/// Result alias for this crate.
pub type Result<T> = core::result::Result<T, MemError>;

#[cfg(test)]
mod proptests {
    use crate::buddy::{BuddyAllocator, FrameKind, FrameState};
    use crate::Pfn;
    use proptest::prelude::*;

    /// Free-frame accounting must always match per-frame state.
    fn check_invariants(a: &BuddyAllocator) {
        let free_by_state = (0..a.total_frames())
            .filter(|f| a.frame_state(Pfn(*f)) == FrameState::Free)
            .count() as u64;
        assert_eq!(free_by_state, a.free_frames());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn buddy_survives_random_alloc_free(ops in prop::collection::vec((0u8..4, 0u8..6), 1..200)) {
            let mut a = BuddyAllocator::new(512);
            let mut live: Vec<(Pfn, u8)> = Vec::new();
            for (op, order) in ops {
                match op {
                    0 | 1 => {
                        if let Ok(p) = a.alloc_order(order, FrameKind::Data) {
                            live.push((p, order));
                        }
                    }
                    2 => {
                        if !live.is_empty() {
                            let (p, o) = live.swap_remove(order as usize % live.len());
                            a.free_order(p, o).unwrap();
                        }
                    }
                    _ => {
                        let n = 1 + order as u64 * 7;
                        if let Ok(p) = a.alloc_contig(n, FrameKind::Tea) {
                            a.free_contig(p, n).unwrap();
                        }
                    }
                }
                check_invariants(&a);
            }
            for (p, o) in live {
                a.free_order(p, o).unwrap();
            }
            check_invariants(&a);
            prop_assert_eq!(a.free_frames(), 512);
            // Everything merges back into the single maximal block.
            prop_assert_eq!(a.largest_free_block(), 512);
        }

        #[test]
        fn contig_allocations_never_overlap(sizes in prop::collection::vec(1u64..40, 1..20)) {
            let mut a = BuddyAllocator::new(2048);
            let mut runs: Vec<(u64, u64)> = Vec::new();
            for n in sizes {
                if let Ok(p) = a.alloc_contig(n, FrameKind::Tea) {
                    for (s, len) in &runs {
                        let disjoint = p.0 + n <= *s || *s + *len <= p.0;
                        prop_assert!(disjoint, "overlap: [{}, {}) vs [{}, {})", p.0, p.0 + n, s, s + len);
                    }
                    runs.push((p.0, n));
                }
            }
        }

        #[test]
        fn reserved_ranges_round_trip(start in 0u64..400, n in 1u64..100) {
            let mut a = BuddyAllocator::new(512);
            prop_assume!(start + n <= 512);
            a.reserve_range(start, n, FrameKind::Tea).unwrap();
            prop_assert_eq!(a.free_frames(), 512 - n);
            a.free_contig(Pfn(start), n).unwrap();
            prop_assert_eq!(a.free_frames(), 512);
            prop_assert_eq!(a.largest_free_block(), 512);
        }
    }
}
