//! A fast, deterministic hasher for hot-path memo tables.
//!
//! The simulator's batched translation path keeps several small
//! address-keyed memo maps that are probed once per access; the
//! SipHash-backed `std` default spends more cycles hashing than the
//! lookup saves. This is the Fx multiply-rotate construction
//! (deterministic, no per-process seed — replay results must not
//! depend on hasher randomization).
//!
//! Not DoS-resistant by design: keys here are simulated addresses the
//! workload generator produced, never attacker-controlled input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher over native words (the FxHash construction).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `HashMap` with the deterministic fast hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` with the deterministic fast hasher.
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FastHasher::default();
        let mut b = FastHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn byte_writes_cover_partial_words() {
        let mut h = FastHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let nine = h.finish();
        let mut h = FastHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_ne!(nine, h.finish());
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        let mut s: FastSet<u64> = FastSet::default();
        for k in 0..1000u64 {
            m.insert(k * 4096, k);
            s.insert(k * 4096);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(42 * 4096)), Some(&42));
        assert!(s.contains(&(999 * 4096)));
        assert!(!s.contains(&1));
    }
}
