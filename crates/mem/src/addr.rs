//! Address and page-size primitives shared by every layer of the stack.
//!
//! The types here are deliberately thin `u64` newtypes ([`VirtAddr`],
//! [`PhysAddr`], [`Vpn`], [`Pfn`]) so that guest-virtual, guest-physical and
//! host-physical quantities can never be mixed up by accident once the
//! virtualization layers tag them (see `dmt-virt`). All radix-level index
//! math used by the x86-style walkers lives on [`VirtAddr`].

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// Log2 of the base page size (4 KiB).
pub const PAGE_SHIFT: u32 = 12;
/// Base page size in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
/// Number of page-table entries per 4 KiB table page (x86-64: 512).
pub const ENTRIES_PER_TABLE: u64 = 512;
/// Bytes per page-table entry on x86-64.
pub const PTE_SIZE: u64 = 8;
/// Bits of virtual address translated per radix level (x86-64: 9).
pub const LEVEL_BITS: u32 = 9;

/// Page sizes supported by the x86-64 architecture and by DMT's TEAs.
///
/// With huge pages the "last-level" PTE moves up the tree: a 2 MiB mapping
/// terminates at L2 and a 1 GiB mapping at L3 (paper §4.4, Figure 12).
///
/// # Examples
///
/// ```
/// use dmt_mem::addr::PageSize;
/// assert_eq!(PageSize::Size2M.bytes(), 2 * 1024 * 1024);
/// assert_eq!(PageSize::Size2M.leaf_level(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageSize {
    /// 4 KiB base page (leaf PTE at level 1).
    Size4K,
    /// 2 MiB huge page (leaf PTE at level 2).
    Size2M,
    /// 1 GiB huge page (leaf PTE at level 3).
    Size1G,
}

impl PageSize {
    /// All supported sizes, smallest first.
    pub const ALL: [PageSize; 3] = [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G];

    /// Log2 of the page size.
    #[inline]
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Size4K => 12,
            PageSize::Size2M => 21,
            PageSize::Size1G => 30,
        }
    }

    /// Page size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        1 << self.shift()
    }

    /// Radix level at which a leaf PTE of this size lives (L1 = 1).
    #[inline]
    pub const fn leaf_level(self) -> u8 {
        match self {
            PageSize::Size4K => 1,
            PageSize::Size2M => 2,
            PageSize::Size1G => 3,
        }
    }

    /// Number of 4 KiB base pages covered by one page of this size.
    #[inline]
    pub const fn base_pages(self) -> u64 {
        1 << (self.shift() - PAGE_SHIFT)
    }

    /// 2-bit encoding used in the `SZ` field of a DMT register (Figure 13).
    #[inline]
    pub const fn encode(self) -> u8 {
        match self {
            PageSize::Size4K => 0,
            PageSize::Size2M => 1,
            PageSize::Size1G => 2,
        }
    }

    /// Decode the `SZ` field of a DMT register.
    ///
    /// Returns `None` for the reserved encoding `3`.
    #[inline]
    pub const fn decode(bits: u8) -> Option<PageSize> {
        match bits {
            0 => Some(PageSize::Size4K),
            1 => Some(PageSize::Size2M),
            2 => Some(PageSize::Size1G),
            _ => None,
        }
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Size4K => write!(f, "4K"),
            PageSize::Size2M => write!(f, "2M"),
            PageSize::Size1G => write!(f, "1G"),
        }
    }
}

macro_rules! addr_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// The zero address.
            pub const ZERO: $name = $name(0);

            /// Raw 64-bit value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Offset within the 4 KiB base page.
            #[inline]
            pub const fn page_offset(self) -> u64 {
                self.0 & (PAGE_SIZE - 1)
            }

            /// Offset within a page of the given size.
            #[inline]
            pub const fn offset_in(self, size: PageSize) -> u64 {
                self.0 & (size.bytes() - 1)
            }

            /// Round down to the containing page boundary of the given size.
            #[inline]
            pub const fn align_down(self, size: PageSize) -> $name {
                $name(self.0 & !(size.bytes() - 1))
            }

            /// Round up to the next page boundary of the given size.
            #[inline]
            pub const fn align_up(self, size: PageSize) -> $name {
                $name((self.0 + size.bytes() - 1) & !(size.bytes() - 1))
            }

            /// Whether the address is aligned to the given page size.
            #[inline]
            pub const fn is_aligned(self, size: PageSize) -> bool {
                self.0 & (size.bytes() - 1) == 0
            }

            /// Checked addition of a byte offset.
            #[inline]
            pub fn checked_add(self, rhs: u64) -> Option<$name> {
                self.0.checked_add(rhs).map($name)
            }
        }

        impl Add<u64> for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: u64) -> $name {
                $name(self.0 + rhs)
            }
        }

        impl AddAssign<u64> for $name {
            #[inline]
            fn add_assign(&mut self, rhs: u64) {
                self.0 += rhs;
            }
        }

        impl Sub<$name> for $name {
            type Output = u64;
            #[inline]
            fn sub(self, rhs: $name) -> u64 {
                self.0 - rhs.0
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({:#x})", stringify!($name), self.0)
            }
        }

        impl From<u64> for $name {
            #[inline]
            fn from(v: u64) -> $name {
                $name(v)
            }
        }

        impl From<$name> for u64 {
            #[inline]
            fn from(v: $name) -> u64 {
                v.0
            }
        }
    };
}

addr_newtype!(
    /// A virtual address in some address space (guest or host; the owning
    /// layer decides which).
    VirtAddr
);
addr_newtype!(
    /// A physical address in some physical address space (guest-physical or
    /// host-physical; the owning layer decides which).
    PhysAddr
);

impl VirtAddr {
    /// Virtual page number (4 KiB granularity).
    #[inline]
    pub const fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// Virtual page number at the given page-size granularity.
    #[inline]
    pub const fn vpn_for(self, size: PageSize) -> u64 {
        self.0 >> size.shift()
    }

    /// 9-bit radix index for the given page-table level.
    ///
    /// Level numbering follows the paper: L4 is the root of a 4-level tree
    /// (VA\[47:39\]), L1 holds the last-level PTEs (VA\[20:12\]). A 5-level
    /// tree adds L5 at VA\[56:48\].
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or greater than 5.
    #[inline]
    pub fn level_index(self, level: u8) -> u64 {
        assert!((1..=5).contains(&level), "radix level must be 1..=5");
        (self.0 >> (PAGE_SHIFT + LEVEL_BITS * (level as u32 - 1))) & (ENTRIES_PER_TABLE - 1)
    }

    /// Construct the canonical virtual address of a 4 KiB page number.
    #[inline]
    pub const fn from_vpn(vpn: Vpn) -> VirtAddr {
        VirtAddr(vpn.0 << PAGE_SHIFT)
    }
}

impl PhysAddr {
    /// Physical frame number (4 KiB granularity).
    #[inline]
    pub const fn pfn(self) -> Pfn {
        Pfn(self.0 >> PAGE_SHIFT)
    }

    /// Construct the physical address of a 4 KiB frame number.
    #[inline]
    pub const fn from_pfn(pfn: Pfn) -> PhysAddr {
        PhysAddr(pfn.0 << PAGE_SHIFT)
    }
}

/// A variable-size translation unit: a contiguous virtual range mapped
/// as one entity by a translation design.
///
/// The paper's eight designs map fixed 4 KiB / 2 MiB / 1 GiB pages; a
/// [`PageSize`] fully describes such a unit. Beyond-the-paper designs
/// (VBI-style variable-size blocks, per-VMA segmentation) map reaches
/// that are neither power-of-two nor page-size-enumerable, so the cache
/// layer and outcome buffers carry an explicit `{ base, len }` instead.
/// `base` is 4 KiB-aligned and `len` is a positive multiple of 4 KiB by
/// contract (the constructors of the backends that emit units uphold
/// it); PA-contiguity over the reach is the emitting design's promise —
/// `pa(unit_base_pa, va) = unit_base_pa + (va - base)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransUnit {
    /// First virtual address covered (4 KiB aligned).
    pub base: VirtAddr,
    /// Length of the reach in bytes (positive multiple of 4 KiB).
    pub len: u64,
}

impl TransUnit {
    /// A unit covering exactly one page of the given size at `va`'s
    /// page boundary.
    #[inline]
    pub const fn of_page(va: VirtAddr, size: PageSize) -> TransUnit {
        TransUnit {
            base: va.align_down(size),
            len: size.bytes(),
        }
    }

    /// One-past-the-end virtual address of the reach.
    #[inline]
    pub const fn end(self) -> VirtAddr {
        VirtAddr(self.base.0 + self.len)
    }

    /// Whether `va` falls inside the reach.
    #[inline]
    pub const fn contains(self, va: VirtAddr) -> bool {
        va.0 >= self.base.0 && va.0 < self.base.0 + self.len
    }

    /// Whether this reach intersects `[base, base + len)`.
    #[inline]
    pub const fn overlaps_range(self, base: VirtAddr, len: u64) -> bool {
        self.base.0 < base.0 + len && base.0 < self.base.0 + self.len
    }

    /// Whether two reaches intersect.
    #[inline]
    pub const fn overlaps(self, other: TransUnit) -> bool {
        self.overlaps_range(other.base, other.len)
    }
}

addr_newtype!(
    /// A virtual page number (4 KiB granularity).
    Vpn
);
addr_newtype!(
    /// A physical frame number (4 KiB granularity).
    Pfn
);

impl Vpn {
    /// The base virtual address of this page.
    #[inline]
    pub const fn base(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }
}

impl Pfn {
    /// The base physical address of this frame.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_basics() {
        assert_eq!(PageSize::Size4K.bytes(), 4096);
        assert_eq!(PageSize::Size2M.bytes(), 2 << 20);
        assert_eq!(PageSize::Size1G.bytes(), 1 << 30);
        assert_eq!(PageSize::Size4K.leaf_level(), 1);
        assert_eq!(PageSize::Size2M.leaf_level(), 2);
        assert_eq!(PageSize::Size1G.leaf_level(), 3);
        assert_eq!(PageSize::Size2M.base_pages(), 512);
        assert_eq!(PageSize::Size1G.base_pages(), 512 * 512);
    }

    #[test]
    fn page_size_register_encoding_roundtrips() {
        for s in PageSize::ALL {
            assert_eq!(PageSize::decode(s.encode()), Some(s));
        }
        assert_eq!(PageSize::decode(3), None);
    }

    #[test]
    fn level_index_matches_x86_layout() {
        // VA[47:39]=0x1ff, VA[38:30]=0x0aa, VA[29:21]=0x055, VA[20:12]=0x123
        let va = VirtAddr(
            (0x1ffu64 << 39) | (0x0aa << 30) | (0x055 << 21) | (0x123 << 12) | 0xabc,
        );
        assert_eq!(va.level_index(4), 0x1ff);
        assert_eq!(va.level_index(3), 0x0aa);
        assert_eq!(va.level_index(2), 0x055);
        assert_eq!(va.level_index(1), 0x123);
        assert_eq!(va.page_offset(), 0xabc);
    }

    #[test]
    fn level_index_supports_five_levels() {
        let va = VirtAddr(0x0eeu64 << 48);
        assert_eq!(va.level_index(5), 0x0ee);
    }

    #[test]
    #[should_panic(expected = "radix level")]
    fn level_index_rejects_level_zero() {
        VirtAddr(0).level_index(0);
    }

    #[test]
    fn alignment_helpers() {
        let va = VirtAddr(0x2001234);
        assert_eq!(va.align_down(PageSize::Size4K), VirtAddr(0x2001000));
        assert_eq!(va.align_up(PageSize::Size4K), VirtAddr(0x2002000));
        assert_eq!(va.align_down(PageSize::Size2M), VirtAddr(0x2000000));
        assert!(VirtAddr(0x2000000).is_aligned(PageSize::Size2M));
        assert!(!va.is_aligned(PageSize::Size4K));
        assert_eq!(VirtAddr(0x2000000).align_up(PageSize::Size2M), VirtAddr(0x2000000));
    }

    #[test]
    fn vpn_pfn_roundtrip() {
        let va = VirtAddr(0xdead_b000);
        assert_eq!(va.vpn(), Vpn(0xd_eadb));
        assert_eq!(VirtAddr::from_vpn(va.vpn()), VirtAddr(0xdead_b000));
        let pa = PhysAddr(0x1234_5000);
        assert_eq!(pa.pfn(), Pfn(0x1_2345));
        assert_eq!(PhysAddr::from_pfn(pa.pfn()), pa);
        assert_eq!(Pfn(5).base(), PhysAddr(5 * 4096));
        assert_eq!(Vpn(7).base(), VirtAddr(7 * 4096));
    }

    #[test]
    fn vpn_for_page_size() {
        let va = VirtAddr(6 * (2 << 20) + 12345);
        assert_eq!(va.vpn_for(PageSize::Size2M), 6);
        assert_eq!(va.offset_in(PageSize::Size2M), 12345);
    }

    #[test]
    fn trans_unit_geometry() {
        let u = TransUnit {
            base: VirtAddr(0x10_0000),
            len: 0x5000,
        };
        assert_eq!(u.end(), VirtAddr(0x10_5000));
        assert!(u.contains(VirtAddr(0x10_0000)));
        assert!(u.contains(VirtAddr(0x10_4fff)));
        assert!(!u.contains(VirtAddr(0x10_5000)));
        assert!(u.overlaps_range(VirtAddr(0x10_4000), 0x1000));
        assert!(!u.overlaps_range(VirtAddr(0x10_5000), 0x1000));
        assert!(!u.overlaps_range(VirtAddr(0x0f_f000), 0x1000));
        let v = TransUnit {
            base: VirtAddr(0x10_4000),
            len: 0x2000,
        };
        assert!(u.overlaps(v) && v.overlaps(u));
        let p = TransUnit::of_page(VirtAddr(0x2001234), PageSize::Size2M);
        assert_eq!(p.base, VirtAddr(0x2000000));
        assert_eq!(p.len, 2 << 20);
    }

    #[test]
    fn arithmetic_and_conversions() {
        let a = VirtAddr(100);
        assert_eq!(a + 28, VirtAddr(128));
        assert_eq!(VirtAddr(128) - a, 28);
        let mut b = PhysAddr(0);
        b += 4096;
        assert_eq!(b, PhysAddr(4096));
        assert_eq!(u64::from(b), 4096);
        assert_eq!(PhysAddr::from(4096u64), b);
        assert_eq!(VirtAddr(u64::MAX).checked_add(1), None);
        assert_eq!(format!("{:x}", PhysAddr(0xff)), "ff");
    }
}
