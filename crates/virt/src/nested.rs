//! Nested virtualization: an L2 guest inside an L1 hypervisor on the L0
//! host (§2.1.3, §3.2, §4.5.3).
//!
//! Two translation regimes are modeled over identical state:
//!
//! * **Vanilla nested KVM** — the L1/L0 tables are compressed into one
//!   shadow table (sPT: L2PA → L0PA) maintained by L0 at VM-exit cost,
//!   and an L2 translation is a hardware 2D walk over L2PT × sPT
//!   (Figure 3).
//! * **Nested pvDMT** — TEAs at L2, L1 and L0 all live in L0-contiguous
//!   physical memory (hypercalls cascade L2→L1→L0), and a translation is
//!   three direct fetches (Figure 9).
//!
//! The L2 page table's leaf tables *are* the L2 TEA pages (cascade-mapped
//! into L2 physical space), so both regimes read the same PTE bytes.

use crate::vm::Vm;
use crate::VirtError;
use dmt_cache::hierarchy::MemoryHierarchy;
use dmt_core::fetcher::{self, FetchOutcome};
use dmt_core::gtea::GteaTable;
use dmt_core::regfile::DmtRegisterFile;
use dmt_core::vtmap::VmaTeaMapping;
use dmt_core::DmtError;
use dmt_mem::buddy::FrameKind;
use dmt_mem::{MemoryOps, PageSize, Pfn, PhysAddr, PhysMemory, VirtAddr};
use dmt_pgtable::nested::{nested_walk, NestedCaches, NestedWalkOutcome};
use dmt_pgtable::pte::{Pte, PteFlags};
use dmt_pgtable::shadow::ShadowPageTable;
use dmt_pgtable::RadixPageTable;
use std::collections::HashMap;

/// A three-level (L0/L1/L2) machine.
#[derive(Debug)]
pub struct NestedMachine {
    /// L0 (host) physical memory.
    pub pm: PhysMemory,
    /// L1's physical space backed in L0 (provides hpt1 = L1PA→L0PA and
    /// the L0 TEA).
    vm1: Vm,
    /// L2 physical frame → L1 physical frame (4 KiB granularity).
    backing2: HashMap<u64, u64>,
    /// L2 physical-frame allocator.
    l2_buddy: dmt_mem::BuddyAllocator,
    l2_frames: u64,
    /// L2's page table (L2VA → L2PA), tables addressed by L2PA.
    pub l2pt: RadixPageTable,
    /// Shadow table L2PA → L0PA (the vanilla baseline's "hPT").
    pub spt: ShadowPageTable,
    /// L1's VMA-to-TEA mapping (covers L2 physical space; PTEs map
    /// L2PA → L1PA), TEA in L0-contiguous memory.
    l1_mapping: VmaTeaMapping,
    /// gTEA tables (maintained one level down in each case).
    pub l1_gtea: GteaTable,
    /// gTEA table for L2's TEAs.
    pub l2_gtea: GteaTable,
    /// Register files per level.
    pub l2_regs: DmtRegisterFile,
    /// L1 registers.
    pub l1_regs: DmtRegisterFile,
    /// L0 (host) registers.
    pub l0_regs: DmtRegisterFile,
    /// MMU caches for the baseline 2D walk.
    pub nested_caches: NestedCaches,
    l2_mappings: Vec<VmaTeaMapping>,
    thp: bool,
    faults: u64,
    /// LCG cursor for spread L2 allocation.
    spread: u64,
}

impl NestedMachine {
    /// Build the stack: `l0_bytes` of host memory, an L1 with `l1_bytes`,
    /// an L2 with `l2_bytes`. With `thp`, 2 MiB pages are used at every
    /// level.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures at any level.
    pub fn new(l0_bytes: u64, l1_bytes: u64, l2_bytes: u64, thp: bool) -> Result<Self, VirtError> {
        Self::new_with_pm(PhysMemory::new_bytes(l0_bytes), l1_bytes, l2_bytes, thp)
    }

    /// Build the stack inside an existing L0 physical memory — the
    /// multi-tenant cloud-node path, where several machines carve their
    /// backing out of one shared buddy allocator. The machine takes
    /// ownership of `pm`; a scheduler can lend it back and forth with
    /// `std::mem::swap` on context switches.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures at any level.
    pub fn new_with_pm(
        mut pm: PhysMemory,
        l1_bytes: u64,
        l2_bytes: u64,
        thp: bool,
    ) -> Result<Self, VirtError> {
        let size = if thp { PageSize::Size2M } else { PageSize::Size4K };
        let vm1 = Vm::new(&mut pm, l1_bytes, size)?;

        // L2 frames are backed lazily on first allocation (like `Vm`);
        // backing an L2 chunk allocates an L1 chunk, writes its L1 TEA
        // PTE, and syncs the sPT identity mapping.
        let l2_frames = l2_bytes >> 12;

        // L1's pv TEA: PTEs mapping L2PA -> L1PA, L0-contiguous.
        let l1_proto = VmaTeaMapping::new(VirtAddr(0), l2_bytes, size, Pfn(0));
        let l1_tea_host = pm.alloc_contig(l1_proto.tea_frames(), FrameKind::Tea)?;
        let mut l1_gtea = GteaTable::new();
        let l1_id = l1_gtea.register(l1_tea_host, l1_proto.tea_frames());
        let l1_mapping =
            VmaTeaMapping::new(VirtAddr(0), l2_bytes, size, l1_tea_host).with_gtea_id(l1_id);

        let spt = ShadowPageTable::new(&mut pm, 4)?;
        let mut l2_buddy = dmt_mem::BuddyAllocator::new(l2_frames);
        let root_g = l2_buddy.alloc_order(0, FrameKind::PageTable)?;

        let mut machine = NestedMachine {
            pm,
            vm1,
            backing2: HashMap::new(),
            l2_buddy,
            l2_frames,
            l2pt: RadixPageTable::from_root(root_g, 4),
            spt,
            l1_mapping,
            l1_gtea,
            l2_gtea: GteaTable::new(),
            l2_regs: DmtRegisterFile::new(),
            l1_regs: DmtRegisterFile::new(),
            l0_regs: DmtRegisterFile::new(),
            nested_caches: NestedCaches::xeon_gold_6138(),
            l2_mappings: Vec::new(),
            thp,
            faults: 0,
            spread: 0x5eed_5678,
        };
        machine.ensure_l2_backed(root_g.0)?;
        let root_l0 = machine
            .l2pa_to_l0pa(PhysAddr::from_pfn(root_g))
            .expect("just backed");
        machine.pm.zero_frame(root_l0.pfn());
        machine.spt.reset_sync_events();
        machine.l1_regs.load(&[machine.l1_mapping]);
        machine.l0_regs.load(&[machine.vm1.host_mapping()]);
        Ok(machine)
    }

    /// Back the chunk containing L2 frame `gframe`: allocate the L1
    /// chunk, write the L1 TEA PTE, and sync the sPT identity mapping.
    fn ensure_l2_backed(&mut self, gframe: u64) -> Result<(), VirtError> {
        let size = if self.thp { PageSize::Size2M } else { PageSize::Size4K };
        let chunk = size.base_pages();
        let head = gframe / chunk * chunk;
        if self.backing2.contains_key(&head) {
            return Ok(());
        }
        let l1 = if self.thp {
            self.vm1.alloc_guest_huge(&mut self.pm, FrameKind::HugeData)?
        } else {
            self.vm1.alloc_guest_frame(&mut self.pm, FrameKind::Data)?
        };
        for k in 0..chunk {
            self.backing2.insert(head + k, l1.0 + k);
        }
        let l1_id = self.l1_mapping.gtea_id().expect("L1 mapping is pv");
        let slot = self
            .l1_gtea
            .resolve(
                l1_id,
                self.l1_mapping
                    .pte_offset(VirtAddr(head << 12))
                    .expect("within L2 space"),
            )
            .map_err(VirtError::Dmt)?;
        let pte = if self.thp {
            Pte::huge_leaf(l1, PteFlags::WRITABLE | PteFlags::USER)
        } else {
            Pte::leaf(l1, PteFlags::WRITABLE | PteFlags::USER)
        };
        self.pm.write_word(slot, pte.raw());
        // sPT identity entry for the new chunk.
        let l0 = self
            .vm1
            .gpa_to_hpa(PhysAddr(l1.0 << 12))
            .ok_or(VirtError::Unbacked { gpa: l1.0 << 12 })?;
        self.spt.sync_mapping(
            &mut self.pm,
            VirtAddr(head << 12),
            l0,
            size,
            PteFlags::WRITABLE | PteFlags::USER,
        )?;
        Ok(())
    }

    /// L2 faults served.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Translate L2PA → L0PA (software, no cycles).
    pub fn l2pa_to_l0pa(&self, l2pa: PhysAddr) -> Option<PhysAddr> {
        let l1f = *self.backing2.get(&(l2pa.raw() >> 12))?;
        self.vm1
            .gpa_to_hpa(PhysAddr((l1f << 12) | l2pa.page_offset()))
    }

    fn l2_view(&mut self) -> L2View<'_> {
        L2View { m: self }
    }

    /// Software ground-truth translation L2VA → L0PA (no cycles).
    pub fn translate_software(&self, l2va: VirtAddr) -> Option<PhysAddr> {
        let view = L2ViewRef { m: self };
        let (l2pa, _) = self.l2pt.translate(&view, l2va)?;
        self.l2pa_to_l0pa(l2pa)
    }

    /// Software ground-truth translation with the L2 leaf's size and
    /// flags — the reference entry for the differential oracle.
    pub fn translate_software_entry(
        &self,
        l2va: VirtAddr,
    ) -> Option<(PhysAddr, PageSize, PteFlags)> {
        let view = L2ViewRef { m: self };
        let (l2pa, size, flags) = self.l2pt.translate_entry(&view, l2va)?;
        Some((self.l2pa_to_l0pa(l2pa)?, size, flags))
    }

    /// Number of `l2_mmap` cascaded hypercalls issued so far (== number
    /// of L2 TEA mappings created).
    pub fn l2_mappings_count(&self) -> usize {
        self.l2_mappings.len()
    }

    /// The L2 process's VMA→TEA mappings (TEA bases are L2-physical
    /// frame numbers; the oracle resolves them through
    /// [`l2pa_to_l0pa`](Self::l2pa_to_l0pa) against the gTEA tables).
    pub fn l2_mappings(&self) -> &[VmaTeaMapping] {
        &self.l2_mappings
    }

    /// L2 `mmap`: cascaded hypercall allocates an L0-contiguous L2 TEA,
    /// maps it down the stack, and installs its pages as L2PT leaf
    /// tables.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn l2_mmap(&mut self, base: VirtAddr, len: u64) -> Result<(), VirtError> {
        let sizes: &[PageSize] = if self.thp {
            &[PageSize::Size4K, PageSize::Size2M]
        } else {
            &[PageSize::Size4K]
        };
        for &s in sizes {
            self.l2_mmap_one(base, len, s)?;
        }
        self.l2_regs.load(&self.l2_mappings);
        Ok(())
    }

    fn l2_mmap_one(&mut self, base: VirtAddr, len: u64, size: PageSize) -> Result<(), VirtError> {
        let proto = VmaTeaMapping::new(base, len, size, Pfn(0));
        let frames = proto.tea_frames();
        // L0 allocates (cascade terminus).
        let host_base = self.pm.alloc_contig(frames, FrameKind::Tea)?;
        let id = self.l2_gtea.register(host_base, frames);
        // Cascade the pages up: L0 frames get L1PAs, then L2PAs.
        let l1_gpa = self.vm1.insert_host_pages(&mut self.pm, host_base, frames)?;
        let l2_base_frame = self.l2_frames;
        self.l2_frames += frames;
        for i in 0..frames {
            self.backing2
                .insert(l2_base_frame + i, (l1_gpa.raw() >> 12) + i);
        }
        // The inserted TEA pages are new L2PAs: the vanilla baseline's
        // sPT must know them (its 2D walker fetches L2PT tables by L2PA).
        for i in 0..frames {
            let l2pa = PhysAddr((l2_base_frame + i) << 12);
            let l0 = self
                .l2pa_to_l0pa(l2pa)
                .ok_or(VirtError::Unbacked { gpa: l2pa.raw() })?;
            self.spt.sync_mapping(
                &mut self.pm,
                VirtAddr(l2pa.raw()),
                l0,
                PageSize::Size4K,
                PteFlags::WRITABLE | PteFlags::USER,
            )?;
        }
        let mapping = VmaTeaMapping::new(
            proto.base(),
            proto.covered_bytes(),
            size,
            Pfn(l2_base_frame),
        )
        .with_gtea_id(id);
        // Install the TEA pages (by L2PA) as L2PT leaf tables.
        let span = 512u64 << size.shift();
        let mut l2pt = self.l2pt.clone();
        {
            let mut view = self.l2_view();
            for i in 0..frames {
                let span_va = VirtAddr(mapping.base().raw() + i * span);
                l2pt.install_table(&mut view, span_va, size.leaf_level(), Pfn(l2_base_frame + i))?;
            }
        }
        self.l2pt = l2pt;
        self.l2_mappings.push(mapping);
        Ok(())
    }

    /// L2 demand paging. Each fault costs one (modeled) VM exit for the
    /// sPT sync in the vanilla regime.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn l2_populate(&mut self, l2va: VirtAddr) -> Result<bool, VirtError> {
        {
            let view = L2ViewRef { m: self };
            if self.l2pt.translate(&view, l2va).is_some() {
                return Ok(false);
            }
        }
        let mut cur = self.spread;
        let (base, frame, size) = if self.thp {
            let f = self.l2_buddy.alloc_block_spread(9, FrameKind::HugeData, &mut cur)?;
            (l2va.align_down(PageSize::Size2M), f, PageSize::Size2M)
        } else {
            let f = self.l2_buddy.alloc_single_spread(FrameKind::Data, &mut cur)?;
            (l2va.align_down(PageSize::Size4K), f, PageSize::Size4K)
        };
        self.spread = cur;
        for k in 0..size.base_pages() {
            self.ensure_l2_backed(frame.0 + k)?;
        }
        let mut l2pt = self.l2pt.clone();
        {
            let mut view = self.l2_view();
            let occupied_l2_slot = if size == PageSize::Size2M {
                l2pt.entry_pa(&view, base, 2)
                    .filter(|slot| Pte(view.read_word(*slot)).present())
            } else {
                None
            };
            if let Some(slot) = occupied_l2_slot {
                // Replace the (empty) L1-table pointer with a huge leaf.
                view.write_word(
                    slot,
                    Pte::huge_leaf(frame, PteFlags::WRITABLE | PteFlags::USER).raw(),
                );
            } else {
                l2pt.map(
                    &mut view,
                    base,
                    PhysAddr::from_pfn(frame),
                    size,
                    PteFlags::WRITABLE | PteFlags::USER,
                )?;
            }
        }
        self.l2pt = l2pt;
        // The sPT sync for the new chunk happened in ensure_l2_backed
        // (one VM exit per fault in the cost model).
        self.faults += 1;
        Ok(true)
    }

    /// Populate a range of L2 virtual memory.
    ///
    /// # Errors
    ///
    /// See [`l2_populate`](Self::l2_populate).
    pub fn l2_populate_range(&mut self, base: VirtAddr, len: u64) -> Result<u64, VirtError> {
        let step = if self.thp {
            PageSize::Size2M
        } else {
            PageSize::Size4K
        };
        let mut n = 0;
        let mut va = base;
        while va.raw() < base.raw() + len {
            if self.l2_populate(va)? {
                n += 1;
            }
            va = VirtAddr(va.align_down(step).raw() + step.bytes());
        }
        Ok(n)
    }

    /// Vanilla nested KVM: 2D walk over L2PT × sPT.
    ///
    /// # Errors
    ///
    /// Propagates walk faults.
    pub fn translate_baseline(
        &mut self,
        l2va: VirtAddr,
        hier: &mut MemoryHierarchy,
    ) -> Result<NestedWalkOutcome, VirtError> {
        Ok(nested_walk(
            &self.l2pt,
            self.spt.table(),
            &mut self.pm,
            l2va,
            hier,
            &mut self.nested_caches,
        )?)
    }

    /// Nested pvDMT: three direct fetches (Figure 9).
    ///
    /// # Errors
    ///
    /// [`DmtError::NotCovered`] means fall back to the baseline walk.
    pub fn translate_pvdmt(
        &mut self,
        l2va: VirtAddr,
        hier: &mut MemoryHierarchy,
    ) -> Result<FetchOutcome, DmtError> {
        fetcher::fetch_nested_pv(
            &self.l2_regs,
            &self.l2_gtea,
            &self.l1_regs,
            &self.l1_gtea,
            &self.l0_regs,
            &mut self.pm,
            hier,
            l2va,
        )
    }

    /// Number of sPT sync events (VM exits) since the last reset.
    pub fn sync_events(&self) -> u64 {
        self.spt.sync_events()
    }
}

/// Mutable L2-physical view (word accesses composed through both backing
/// maps; frames from the L2 buddy).
#[derive(Debug)]
struct L2View<'a> {
    m: &'a mut NestedMachine,
}

/// Read-only redirection used where only `&self` is available.
struct L2ViewRef<'a> {
    m: &'a NestedMachine,
}

fn redirect(m: &NestedMachine, addr: PhysAddr) -> PhysAddr {
    m.l2pa_to_l0pa(addr)
        .unwrap_or_else(|| panic!("unbacked L2 physical address {addr}"))
}

impl MemoryOps for L2View<'_> {
    fn read_word(&self, addr: PhysAddr) -> u64 {
        self.m.pm.read_word(redirect(self.m, addr))
    }
    fn write_word(&mut self, addr: PhysAddr, value: u64) {
        let h = redirect(self.m, addr);
        self.m.pm.write_word(h, value);
    }
    fn alloc_zeroed_frame(&mut self, kind: FrameKind) -> dmt_mem::Result<Pfn> {
        let mut cur = self.m.spread;
        let g = self.m.l2_buddy.alloc_single_spread(kind, &mut cur)?;
        self.m.spread = cur;
        self.m
            .ensure_l2_backed(g.0)
            .map_err(|_| dmt_mem::MemError::OutOfMemory)?;
        let h = redirect(self.m, PhysAddr::from_pfn(g));
        self.m.pm.zero_frame(h.pfn());
        Ok(g)
    }
    fn free_frame(&mut self, pfn: Pfn) -> dmt_mem::Result<()> {
        self.m.l2_buddy.free_order(pfn, 0)
    }
    fn copy_frame(&mut self, src: Pfn, dst: Pfn) {
        let s = redirect(self.m, PhysAddr::from_pfn(src)).pfn();
        let d = redirect(self.m, PhysAddr::from_pfn(dst)).pfn();
        self.m.pm.copy_frame(s, d);
    }
}

impl MemoryOps for L2ViewRef<'_> {
    fn read_word(&self, addr: PhysAddr) -> u64 {
        self.m.pm.read_word(redirect(self.m, addr))
    }
    fn write_word(&mut self, _addr: PhysAddr, _value: u64) {
        unreachable!("read-only view")
    }
    fn alloc_zeroed_frame(&mut self, _kind: FrameKind) -> dmt_mem::Result<Pfn> {
        unreachable!("read-only view")
    }
    fn free_frame(&mut self, _pfn: Pfn) -> dmt_mem::Result<()> {
        unreachable!("read-only view")
    }
    fn copy_frame(&mut self, _src: Pfn, _dst: Pfn) {
        unreachable!("read-only view")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L2BASE: VirtAddr = VirtAddr(0x7f00_0000_0000);

    fn machine(thp: bool) -> NestedMachine {
        let mut m = NestedMachine::new(512 << 20, 96 << 20, 32 << 20, thp).unwrap();
        m.l2_mmap(L2BASE, 8 << 20).unwrap();
        m.l2_populate_range(L2BASE, 8 << 20).unwrap();
        m
    }

    #[test]
    fn baseline_and_pvdmt_agree() {
        let mut m = machine(false);
        let mut hier = MemoryHierarchy::default();
        let va = VirtAddr(L2BASE.raw() + 3 * 4096 + 0x45);
        let base = m.translate_baseline(va, &mut hier).unwrap();
        let pv = m.translate_pvdmt(va, &mut hier).unwrap();
        assert_eq!(base.pa, pv.pa);
    }

    #[test]
    fn pvdmt_takes_three_references() {
        let mut m = machine(false);
        let mut hier = MemoryHierarchy::default();
        let out = m
            .translate_pvdmt(VirtAddr(L2BASE.raw() + 0x5000), &mut hier)
            .unwrap();
        assert_eq!(out.refs(), 3, "L2PTE + L1PTE + L0PTE");
    }

    #[test]
    fn baseline_2d_walk_over_spt_is_native_x_guest() {
        let mut m = machine(false);
        m.nested_caches = NestedCaches::none();
        let mut hier = MemoryHierarchy::default();
        let out = m
            .translate_baseline(VirtAddr(L2BASE.raw() + 0x5000), &mut hier)
            .unwrap();
        assert_eq!(out.refs(), 24, "L2PT x sPT behaves like a 2D walk");
    }

    #[test]
    fn every_populate_is_a_shadow_sync() {
        let m = machine(false);
        // mmap-time TEA inserts also sync the sPT, so events >= faults.
        assert!(m.sync_events() >= m.faults());
        assert_eq!(m.faults(), (8 << 20) / 4096);
    }

    #[test]
    fn thp_nested_works_at_all_levels() {
        let mut m = machine(true);
        let mut hier = MemoryHierarchy::default();
        let va = VirtAddr(L2BASE.raw() + (3 << 21) + 0x777);
        let pv = m.translate_pvdmt(va, &mut hier).unwrap();
        assert_eq!(pv.refs(), 3);
        assert_eq!(pv.size, PageSize::Size2M);
        let base = m.translate_baseline(va, &mut hier).unwrap();
        assert_eq!(base.pa, pv.pa);
    }

    #[test]
    fn uncovered_l2va_falls_back() {
        let mut m = machine(false);
        let mut hier = MemoryHierarchy::default();
        assert!(matches!(
            m.translate_pvdmt(VirtAddr(0x1000), &mut hier),
            Err(DmtError::NotCovered { .. })
        ));
    }
}
