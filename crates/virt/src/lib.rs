//! Virtualization substrate for the DMT reproduction: guests, nested
//! paging, shadow paging, the `KVM_HC_ALLOC_TEA` hypercall, and the
//! single-level and nested machines the evaluation runs on.
//!
//! * [`vm`] — one guest's physical-memory backing, host page table
//!   (EPT/NPT analog) with its hTEA, and a [`dmt_mem::MemoryOps`] view of
//!   guest physical memory.
//! * [`hypercall`] — `KVM_HC_ALLOC_TEA` (§4.5.1): batched gTEA requests,
//!   host-side splitting, gTEA-table registration, `vm_insert_pages`.
//! * [`machine`] — [`machine::VirtMachine`]: every single-level
//!   translation design (2D walk, shadow, DMT, pvDMT) over shared state.
//! * [`nested`] — [`nested::NestedMachine`]: the L0/L1/L2 stack with the
//!   shadow-paging baseline and nested pvDMT (§3.2, §4.5.3).
//!
//! # Example
//!
//! ```
//! use dmt_virt::machine::{GuestTeaMode, VirtMachine};
//! use dmt_cache::hierarchy::MemoryHierarchy;
//! use dmt_mem::VirtAddr;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = VirtMachine::new(128 << 20, 16 << 20, GuestTeaMode::Pv, false)?;
//! let base = VirtAddr(0x7f00_0000_0000);
//! m.guest_mmap(base, 2 << 20)?;
//! m.guest_populate_range(base, 2 << 20)?;
//! let mut hier = MemoryHierarchy::default();
//! let pv = m.translate_pvdmt(base, &mut hier)?;
//! assert_eq!(pv.refs(), 2); // pvDMT: two references in a VM
//! # Ok(())
//! # }
//! ```

pub mod hypercall;
pub mod machine;
pub mod nested;
pub mod vm;

pub use hypercall::{kvm_hc_alloc_tea, HypercallStats, TeaGrant, TeaRequest};
pub use machine::{GuestTeaMode, VirtMachine};
pub use nested::NestedMachine;
pub use vm::{GuestView, GuestViewRef, Vm};

use core::fmt;
use dmt_core::DmtError;
use dmt_mem::MemError;
use dmt_pgtable::PtError;

/// Errors from the virtualization layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum VirtError {
    /// A guest physical address has no host backing.
    Unbacked {
        /// The guest physical address.
        gpa: u64,
    },
    /// Underlying memory failure.
    Mem(MemError),
    /// Underlying page-table failure.
    Pt(PtError),
    /// DMT fetch failure (isolation faults surface here).
    Dmt(DmtError),
}

impl fmt::Display for VirtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VirtError::Unbacked { gpa } => {
                write!(f, "guest physical address {gpa:#x} has no host backing")
            }
            VirtError::Mem(e) => write!(f, "memory error: {e}"),
            VirtError::Pt(e) => write!(f, "page-table error: {e}"),
            VirtError::Dmt(e) => write!(f, "DMT error: {e}"),
        }
    }
}

impl std::error::Error for VirtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VirtError::Mem(e) => Some(e),
            VirtError::Pt(e) => Some(e),
            VirtError::Dmt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for VirtError {
    fn from(e: MemError) -> Self {
        VirtError::Mem(e)
    }
}

impl From<PtError> for VirtError {
    fn from(e: PtError) -> Self {
        VirtError::Pt(e)
    }
}

impl From<DmtError> for VirtError {
    fn from(e: DmtError) -> Self {
        VirtError::Dmt(e)
    }
}
