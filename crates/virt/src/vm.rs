//! A single-level virtual machine: guest physical memory backed by host
//! frames, with a real host page table (the EPT/NPT analog) whose
//! last-level entries live in a host TEA.
//!
//! The hypervisor "typically creates one VMA to represent the guest
//! physical memory" (§4.5); [`Vm::new`] builds exactly that — one
//! hVMA-to-hTEA mapping covering the whole guest physical space, with the
//! hPT's leaf tables being the hTEA's pages. The same physical entries
//! therefore serve the hardware 2D walker (which walks the hPT) and the
//! DMT fetcher (which indexes the hTEA).

use crate::VirtError;
use dmt_core::vtmap::VmaTeaMapping;
use dmt_mem::buddy::FrameKind;
use dmt_mem::{MemoryOps, PageSize, Pfn, PhysAddr, PhysMemory, VirtAddr};
use dmt_pgtable::pte::PteFlags;
use dmt_pgtable::RadixPageTable;
use std::collections::HashMap;

/// One guest: its physical-memory backing, host page table, and host TEA.
#[derive(Debug)]
pub struct Vm {
    /// Host page table mapping gPA → hPA.
    hpt: RadixPageTable,
    /// The hVMA-to-hTEA mapping covering guest physical memory.
    host_mapping: VmaTeaMapping,
    /// gframe → hframe (4 KiB granularity), for the software view.
    backing: HashMap<u64, u64>,
    /// Guest-frame allocator (guest physical address space).
    guest_buddy: dmt_mem::BuddyAllocator,
    guest_frames: u64,
    host_page_size: PageSize,
    /// LCG cursor for spread allocation.
    spread: u64,
}

impl Vm {
    /// Create a guest with `guest_bytes` of physical memory, eagerly
    /// backed by host frames and mapped in the hPT at `host_page_size`
    /// granularity (4 KiB normally, 2 MiB when the host runs THP).
    ///
    /// # Errors
    ///
    /// Propagates host allocation failures.
    ///
    /// # Panics
    ///
    /// Panics if `guest_bytes` is not a multiple of `host_page_size` or
    /// `host_page_size` is 1 GiB (not modeled for guest backing).
    pub fn new(
        pm: &mut PhysMemory,
        guest_bytes: u64,
        host_page_size: PageSize,
    ) -> Result<Self, VirtError> {
        assert!(
            guest_bytes.is_multiple_of(host_page_size.bytes()),
            "guest size must be host-page aligned"
        );
        assert!(
            host_page_size != PageSize::Size1G,
            "1 GiB guest backing not modeled"
        );
        let mut hpt = RadixPageTable::new(pm, 4)?;
        // One host TEA covering the whole guest physical space.
        let proto = VmaTeaMapping::new(VirtAddr(0), guest_bytes, host_page_size, Pfn(0));
        let htea = pm.alloc_contig(proto.tea_frames(), FrameKind::Tea)?;
        let host_mapping = VmaTeaMapping::new(VirtAddr(0), guest_bytes, host_page_size, htea);
        // Install the hTEA pages as the hPT's leaf tables.
        let span = 512u64 << host_page_size.shift();
        for i in 0..host_mapping.tea_frames() {
            hpt.install_table(
                pm,
                VirtAddr(i * span),
                host_page_size.leaf_level(),
                Pfn(htea.0 + i),
            )?;
        }
        // Guest pages are backed lazily on first allocation: setup cost
        // scales with the pages a workload actually touches, letting the
        // simulated guests reach the paper's multi-GiB regime (where the
        // MMU caches stop covering the footprint) at negligible cost.
        Ok(Vm {
            hpt,
            host_mapping,
            backing: HashMap::new(),
            guest_buddy: dmt_mem::BuddyAllocator::new(guest_bytes >> 12),
            guest_frames: guest_bytes >> 12,
            host_page_size,
            spread: 0x5eed_1234,
        })
    }

    /// Ensure the host-page-sized chunk containing guest frame `gframe`
    /// is backed by host memory and mapped in the hPT.
    fn ensure_backed(&mut self, pm: &mut PhysMemory, gframe: u64) -> Result<(), VirtError> {
        let chunk = self.host_page_size.base_pages();
        let head = gframe / chunk * chunk;
        if self.backing.contains_key(&head) {
            return Ok(());
        }
        let gpa = VirtAddr(head << 12);
        let hframe = match self.host_page_size {
            PageSize::Size4K => pm.alloc_frame(FrameKind::Data)?,
            _ => pm.buddy_mut().alloc_order(9, FrameKind::HugeData)?,
        };
        self.hpt.map(
            pm,
            gpa,
            PhysAddr::from_pfn(hframe),
            self.host_page_size,
            PteFlags::WRITABLE | PteFlags::USER,
        )?;
        for k in 0..chunk {
            self.backing.insert(head + k, hframe.0 + k);
        }
        Ok(())
    }

    /// Guest frames currently backed (sorted) — what a host-side table
    /// builder must map.
    pub fn backed_gframes(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.backing.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The host page table (for hardware 2D walks).
    pub fn hpt(&self) -> &RadixPageTable {
        &self.hpt
    }

    /// The hVMA-to-hTEA mapping (for the host DMT registers).
    pub fn host_mapping(&self) -> VmaTeaMapping {
        self.host_mapping
    }

    /// Guest physical memory size in frames.
    pub fn guest_frames(&self) -> u64 {
        self.guest_frames
    }

    /// Host page size backing the guest.
    pub fn host_page_size(&self) -> PageSize {
        self.host_page_size
    }

    /// Translate a guest physical address to host physical (software
    /// path, no cycles).
    pub fn gpa_to_hpa(&self, gpa: PhysAddr) -> Option<PhysAddr> {
        let hframe = *self.backing.get(&(gpa.raw() >> 12))?;
        Some(PhysAddr((hframe << 12) | gpa.page_offset()))
    }

    /// Allocate a guest frame (guest-physical space).
    ///
    /// # Errors
    ///
    /// Propagates guest allocator exhaustion.
    pub fn alloc_guest_frame(&mut self, pm: &mut PhysMemory, kind: FrameKind) -> Result<Pfn, VirtError> {
        let mut cur = self.spread;
        let g = self.guest_buddy.alloc_single_spread(kind, &mut cur)?;
        self.spread = cur;
        self.ensure_backed(pm, g.0)?;
        // Fresh guest frames read as zero.
        if let Some(h) = self.backing.get(&g.0) {
            pm.zero_frame(Pfn(*h));
        }
        Ok(g)
    }

    /// Allocate guest-physically contiguous frames (for non-pv gTEAs,
    /// which must be contiguous in *guest* physical memory).
    ///
    /// # Errors
    ///
    /// Propagates guest allocator fragmentation failures.
    pub fn alloc_guest_contig(
        &mut self,
        pm: &mut PhysMemory,
        frames: u64,
        kind: FrameKind,
    ) -> Result<Pfn, VirtError> {
        let g = self.guest_buddy.alloc_contig(frames, kind)?;
        for i in 0..frames {
            self.ensure_backed(pm, g.0 + i)?;
            if let Some(h) = self.backing.get(&(g.0 + i)) {
                pm.zero_frame(Pfn(*h));
            }
        }
        Ok(g)
    }

    /// Allocate a naturally aligned 2 MiB guest block (guest THP data).
    ///
    /// # Errors
    ///
    /// Propagates guest allocator exhaustion.
    pub fn alloc_guest_huge(
        &mut self,
        pm: &mut PhysMemory,
        kind: FrameKind,
    ) -> Result<Pfn, VirtError> {
        let mut cur = self.spread;
        let g = self.guest_buddy.alloc_block_spread(9, kind, &mut cur)?;
        self.spread = cur;
        for i in 0..512 {
            self.ensure_backed(pm, g.0 + i)?;
            if let Some(h) = self.backing.get(&(g.0 + i)) {
                pm.zero_frame(Pfn(*h));
            }
        }
        Ok(g)
    }

    /// Map extra host frames into the guest physical space at fresh gPAs
    /// — the `vm_insert_pages` path pvDMT uses to expose host-allocated
    /// gTEAs to the guest (§4.6.2). Returns the base gPA.
    ///
    /// # Errors
    ///
    /// Fails if the guest has no room or the hPT mapping fails.
    pub fn insert_host_pages(
        &mut self,
        pm: &mut PhysMemory,
        host_base: Pfn,
        frames: u64,
    ) -> Result<PhysAddr, VirtError> {
        // Extend the guest physical space upward (fresh gPAs above RAM).
        let base_gframe = self.guest_frames;
        self.guest_frames += frames;
        for i in 0..frames {
            let gpa = VirtAddr((base_gframe + i) << 12);
            self.hpt.map(
                pm,
                gpa,
                PhysAddr::from_pfn(Pfn(host_base.0 + i)),
                PageSize::Size4K,
                PteFlags::WRITABLE | PteFlags::USER,
            )?;
            self.backing.insert(base_gframe + i, host_base.0 + i);
        }
        Ok(PhysAddr(base_gframe << 12))
    }

    /// A [`MemoryOps`] view of guest physical memory, for building guest
    /// page tables with the ordinary radix code.
    pub fn guest_view<'a>(&'a mut self, pm: &'a mut PhysMemory) -> GuestView<'a> {
        GuestView { vm: self, pm }
    }

    /// A read-only guest-physical view (software walks / translations).
    pub fn guest_view_ref<'a>(&'a self, pm: &'a PhysMemory) -> GuestViewRef<'a> {
        GuestViewRef { vm: self, pm }
    }
}

/// Read-only guest-physical view; write and allocation operations panic.
#[derive(Debug)]
pub struct GuestViewRef<'a> {
    vm: &'a Vm,
    pm: &'a PhysMemory,
}

impl MemoryOps for GuestViewRef<'_> {
    fn read_word(&self, addr: PhysAddr) -> u64 {
        let h = self
            .vm
            .gpa_to_hpa(addr)
            .unwrap_or_else(|| panic!("unbacked guest physical address {addr}"));
        self.pm.read_word(h)
    }
    fn write_word(&mut self, _addr: PhysAddr, _value: u64) {
        unreachable!("read-only view")
    }
    fn alloc_zeroed_frame(&mut self, _kind: FrameKind) -> dmt_mem::Result<Pfn> {
        unreachable!("read-only view")
    }
    fn free_frame(&mut self, _pfn: Pfn) -> dmt_mem::Result<()> {
        unreachable!("read-only view")
    }
    fn copy_frame(&mut self, _src: Pfn, _dst: Pfn) {
        unreachable!("read-only view")
    }
}

/// Guest-physical view of memory: word accesses are redirected through
/// the backing map; frame allocation draws from the guest's own buddy.
#[derive(Debug)]
pub struct GuestView<'a> {
    vm: &'a mut Vm,
    pm: &'a mut PhysMemory,
}

impl GuestView<'_> {
    fn redirect(&self, addr: PhysAddr) -> PhysAddr {
        self.vm
            .gpa_to_hpa(addr)
            .unwrap_or_else(|| panic!("unbacked guest physical address {addr}"))
    }
}

impl MemoryOps for GuestView<'_> {
    fn read_word(&self, addr: PhysAddr) -> u64 {
        self.pm.read_word(self.redirect(addr))
    }
    fn write_word(&mut self, addr: PhysAddr, value: u64) {
        let h = self.redirect(addr);
        self.pm.write_word(h, value);
    }
    fn alloc_zeroed_frame(&mut self, kind: FrameKind) -> dmt_mem::Result<Pfn> {
        let mut cur = self.vm.spread;
        let g = self.vm.guest_buddy.alloc_single_spread(kind, &mut cur)?;
        self.vm.spread = cur;
        self.vm
            .ensure_backed(self.pm, g.0)
            .map_err(|_| dmt_mem::MemError::OutOfMemory)?;
        if let Some(h) = self.vm.backing.get(&g.0) {
            self.pm.zero_frame(Pfn(*h));
        }
        Ok(g)
    }
    fn free_frame(&mut self, pfn: Pfn) -> dmt_mem::Result<()> {
        self.vm.guest_buddy.free_order(pfn, 0)
    }
    fn copy_frame(&mut self, src: Pfn, dst: Pfn) {
        let s = self.redirect(PhysAddr::from_pfn(src)).pfn();
        let d = self.redirect(PhysAddr::from_pfn(dst)).pfn();
        self.pm.copy_frame(s, d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backing_is_lazy_but_consistent() {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut vm = Vm::new(&mut pm, 8 << 20, PageSize::Size4K).unwrap();
        // Untouched guest pages are unbacked (lazy).
        assert!(vm.gpa_to_hpa(PhysAddr(4 << 20)).is_none());
        // Allocation backs them and the hPT agrees with the map.
        let g = vm.alloc_guest_frame(&mut pm, FrameKind::Data).unwrap();
        let gpa = PhysAddr(g.0 << 12);
        let via_map = vm.gpa_to_hpa(gpa).unwrap();
        let via_pt = vm.hpt().translate(&pm, VirtAddr(gpa.raw())).unwrap().0;
        assert_eq!(via_map, via_pt);
        assert_eq!(vm.backed_gframes(), vec![g.0]);
    }

    #[test]
    fn host_tea_serves_as_hpt_leaf_tables() {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let vm = Vm::new(&mut pm, 8 << 20, PageSize::Size4K).unwrap();
        let hm = vm.host_mapping();
        for i in 0..hm.tea_frames() {
            let gpa = VirtAddr(i * (2 << 20));
            assert_eq!(
                vm.hpt().table_frame(&pm, gpa, 1),
                Some(Pfn(hm.tea_base().0 + i))
            );
        }
    }

    #[test]
    fn huge_host_backing() {
        let mut pm = PhysMemory::new_bytes(128 << 20);
        let mut vm = Vm::new(&mut pm, 16 << 20, PageSize::Size2M).unwrap();
        // Touch something in the second 2 MiB chunk to back it.
        let g = vm.alloc_guest_huge(&mut pm, FrameKind::HugeData).unwrap();
        let probe = VirtAddr((g.0 << 12) + 0x1234);
        let (hpa, size) = vm.hpt().translate(&pm, probe).unwrap();
        assert_eq!(size, PageSize::Size2M);
        assert_eq!(vm.gpa_to_hpa(PhysAddr(probe.raw())), Some(hpa));
    }

    #[test]
    fn guest_view_builds_guest_page_tables() {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut vm = Vm::new(&mut pm, 8 << 20, PageSize::Size4K).unwrap();
        let gpt = {
            let mut view = vm.guest_view(&mut pm);
            let mut gpt = RadixPageTable::new(&mut view, 4).unwrap();
            gpt.map(
                &mut view,
                VirtAddr(0x7f00_0000_0000),
                PhysAddr(0x30_0000),
                PageSize::Size4K,
                PteFlags::WRITABLE,
            )
            .unwrap();
            gpt
        };
        // Software translation through the view agrees.
        let view = vm.guest_view(&mut pm);
        assert_eq!(
            gpt.translate(&view, VirtAddr(0x7f00_0000_0000)),
            Some((PhysAddr(0x30_0000), PageSize::Size4K))
        );
    }

    #[test]
    fn guest_contig_is_contiguous_in_gpa_not_hpa() {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut vm = Vm::new(&mut pm, 8 << 20, PageSize::Size4K).unwrap();
        let g = vm.alloc_guest_contig(&mut pm, 4, FrameKind::Tea).unwrap();
        // Contiguous in guest space by construction; host backing need
        // not be (it happens to be here because backing was allocated in
        // order — the property that matters is gPA contiguity).
        for i in 1..4u64 {
            assert!(vm.gpa_to_hpa(PhysAddr((g.0 + i) << 12)).is_some());
        }
    }

    #[test]
    fn insert_host_pages_extends_guest_space() {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut vm = Vm::new(&mut pm, 4 << 20, PageSize::Size4K).unwrap();
        let host = pm.alloc_contig(4, FrameKind::Tea).unwrap();
        let gpa = vm.insert_host_pages(&mut pm, host, 4).unwrap();
        assert_eq!(gpa, PhysAddr(4 << 20), "appended above guest RAM");
        assert_eq!(
            vm.gpa_to_hpa(gpa + 4096),
            Some(PhysAddr((host.0 + 1) << 12))
        );
        // The hPT also knows the new range (hardware walks reach it).
        assert_eq!(
            vm.hpt().translate(&pm, VirtAddr(gpa.raw())).unwrap().0,
            PhysAddr(host.0 << 12)
        );
    }
}
