//! A complete single-level virtualized machine: guest OS state, host
//! state, and every translation path the paper evaluates in §6.1.2.
//!
//! [`VirtMachine`] wires together the guest page table (built in guest
//! physical memory), the host page table with its hTEA, the guest and
//! host DMT register files, the gTEA table, an optional shadow page
//! table, and VM-exit accounting. The `translate_*` methods expose the
//! competing designs over identical state:
//!
//! * [`VirtMachine::translate_nested`] — hardware 2D walk (vanilla KVM);
//! * [`VirtMachine::translate_shadow`] — native-length sPT walk (the
//!   exits were paid at update time);
//! * [`VirtMachine::translate_pvdmt`] — 2 references via the gTEA table;
//! * [`VirtMachine::translate_dmt`] — 3 references without
//!   paravirtualization.

use crate::hypercall::{kvm_hc_alloc_tea, HypercallStats, TeaRequest};
use crate::vm::Vm;
use crate::VirtError;
use dmt_cache::hierarchy::MemoryHierarchy;
use dmt_cache::pwc::PageWalkCache;
use dmt_core::fetcher::{self, FetchOutcome};
use dmt_core::gtea::GteaTable;
use dmt_core::regfile::DmtRegisterFile;
use dmt_core::vtmap::VmaTeaMapping;
use dmt_core::DmtError;
use dmt_mem::buddy::FrameKind;
use dmt_mem::{PageSize, PhysAddr, PhysMemory, Pfn, VirtAddr};
use dmt_pgtable::nested::{nested_walk, NestedCaches, NestedWalkOutcome};
use dmt_pgtable::pte::PteFlags;
use dmt_pgtable::shadow::ShadowPageTable;
use dmt_pgtable::walk::{walk_dimension, WalkDim, WalkOutcome};
use dmt_pgtable::RadixPageTable;

/// How the guest's TEAs are placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestTeaMode {
    /// pvDMT: host-allocated, host-contiguous, gTEA-table mediated.
    Pv,
    /// Plain DMT: guest-allocated, contiguous only in guest physical
    /// memory.
    Unpv,
    /// No TEAs at all — a vanilla guest whose page-table pages are
    /// ordinary guest frames (the baseline configurations).
    None,
}

/// A single-level virtualized machine under test.
#[derive(Debug)]
pub struct VirtMachine {
    /// Host physical memory.
    pub pm: PhysMemory,
    /// The guest's backing + host page table.
    pub vm: Vm,
    /// Guest page table (gVA → gPA), tables in guest physical memory.
    pub gpt: RadixPageTable,
    /// Guest DMT registers.
    pub guest_regs: DmtRegisterFile,
    /// Host DMT registers (the single guest-physical VMA mapping).
    pub host_regs: DmtRegisterFile,
    /// The per-VM gTEA table (pv mode).
    pub gtea_table: GteaTable,
    /// Shadow page table (gVA → hPA) with sync accounting.
    pub spt: ShadowPageTable,
    /// MMU caches for 2D walks.
    pub nested_caches: NestedCaches,
    /// PWC for shadow (native-style) walks.
    pub shadow_pwc: PageWalkCache,
    /// Hypercall accounting.
    pub hypercalls: HypercallStats,
    mode: GuestTeaMode,
    guest_thp: bool,
    guest_mappings: Vec<VmaTeaMapping>,
    faults: u64,
}

impl VirtMachine {
    /// Build a machine with `host_bytes` of host memory and `guest_bytes`
    /// of guest memory. `thp` applies to both dimensions (guest 2 MiB
    /// pages, host 2 MiB backing), matching the paper's THP runs.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn new(
        host_bytes: u64,
        guest_bytes: u64,
        mode: GuestTeaMode,
        thp: bool,
    ) -> Result<Self, VirtError> {
        Self::new_with_pm(PhysMemory::new_bytes(host_bytes), guest_bytes, mode, thp)
    }

    /// Build a machine inside an existing host physical memory — the
    /// multi-tenant cloud-node path, where several machines carve their
    /// backing out of one shared buddy allocator. The machine takes
    /// ownership of `pm`; a scheduler can lend it back and forth with
    /// `std::mem::swap` on context switches.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn new_with_pm(
        mut pm: PhysMemory,
        guest_bytes: u64,
        mode: GuestTeaMode,
        thp: bool,
    ) -> Result<Self, VirtError> {
        let host_size = if thp { PageSize::Size2M } else { PageSize::Size4K };
        let mut vm = Vm::new(&mut pm, guest_bytes, host_size)?;
        let gpt = {
            let mut view = vm.guest_view(&mut pm);
            RadixPageTable::new(&mut view, 4)?
        };
        let spt = ShadowPageTable::new(&mut pm, 4)?;
        let mut host_regs = DmtRegisterFile::new();
        host_regs.load(&[vm.host_mapping()]);
        Ok(VirtMachine {
            pm,
            vm,
            gpt,
            guest_regs: DmtRegisterFile::new(),
            host_regs,
            gtea_table: GteaTable::new(),
            spt,
            nested_caches: NestedCaches::xeon_gold_6138(),
            shadow_pwc: PageWalkCache::default(),
            hypercalls: HypercallStats::default(),
            mode,
            guest_thp: thp,
            guest_mappings: Vec::new(),
            faults: 0,
        })
    }

    /// Whether the guest uses 2 MiB pages.
    pub fn guest_thp(&self) -> bool {
        self.guest_thp
    }

    /// Guest page faults served (populations; each one is a shadow-paging
    /// sync event in the sPT cost model).
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// The guest-register-visible mappings.
    pub fn guest_mappings(&self) -> &[VmaTeaMapping] {
        &self.guest_mappings
    }

    /// Guest `mmap`: create a VMA's gTEA(s) and install them as guest
    /// table pages. In pv mode this issues one `KVM_HC_ALLOC_TEA`
    /// hypercall; in unpv mode the guest allocates from its own physical
    /// memory.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures in either address space.
    pub fn guest_mmap(&mut self, base: VirtAddr, len: u64) -> Result<(), VirtError> {
        let size = if self.guest_thp { PageSize::Size2M } else { PageSize::Size4K };
        // With THP the guest keeps a 4 KiB TEA too (edges/fallback), as in
        // Figure 12 — create it first so the 2 MiB TEA dominates probes.
        let sizes: &[PageSize] = if self.guest_thp {
            &[PageSize::Size4K, PageSize::Size2M]
        } else {
            &[PageSize::Size4K]
        };
        for &s in sizes {
            self.guest_mmap_one(base, len, s)?;
        }
        let _ = size;
        // Reload the guest registers (context-switch analog).
        self.guest_regs.load(&self.guest_mappings);
        Ok(())
    }

    fn guest_mmap_one(&mut self, base: VirtAddr, len: u64, size: PageSize) -> Result<(), VirtError> {
        match self.mode {
            GuestTeaMode::None => return Ok(()),
            GuestTeaMode::Pv => {
                let grants = kvm_hc_alloc_tea(
                    &mut self.pm,
                    &mut self.vm,
                    &mut self.gtea_table,
                    &[TeaRequest { base, len, size }],
                    &mut self.hypercalls,
                )?;
                for g in grants {
                    self.install_gtea(&g.mapping)?;
                    self.guest_mappings.push(g.mapping);
                }
            }
            GuestTeaMode::Unpv => {
                let proto = VmaTeaMapping::new(base, len, size, Pfn(0));
                let gframe =
                    self.vm
                        .alloc_guest_contig(&mut self.pm, proto.tea_frames(), FrameKind::Tea)?;
                let mapping =
                    VmaTeaMapping::new(proto.base(), proto.covered_bytes(), size, gframe);
                self.install_gtea(&mapping)?;
                self.guest_mappings.push(mapping);
            }
        }
        Ok(())
    }

    /// Install a gTEA's pages (addressed by the gPA in `tea_base`) as the
    /// guest page table's leaf tables for the covered region.
    fn install_gtea(&mut self, mapping: &VmaTeaMapping) -> Result<(), VirtError> {
        let size = mapping.page_size();
        let span = 512u64 << size.shift();
        let mut view = self.vm.guest_view(&mut self.pm);
        for i in 0..mapping.tea_frames() {
            let span_va = VirtAddr(mapping.base().raw() + i * span);
            self.gpt.install_table(
                &mut view,
                span_va,
                size.leaf_level(),
                Pfn(mapping.tea_base().0 + i),
            )?;
        }
        Ok(())
    }

    /// Guest demand paging: make the page containing `gva` present,
    /// syncing the shadow table (one modeled VM exit per fault).
    /// Returns `true` when a fault was served.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn guest_populate(&mut self, gva: VirtAddr) -> Result<bool, VirtError> {
        {
            let view = self.vm.guest_view(&mut self.pm);
            if self.gpt.translate(&view, gva).is_some() {
                return Ok(false);
            }
        }
        let (gbase, gframe, size) = if self.guest_thp {
            let g = self.vm.alloc_guest_huge(&mut self.pm, FrameKind::HugeData)?;
            (gva.align_down(PageSize::Size2M), g, PageSize::Size2M)
        } else {
            let g = self.vm.alloc_guest_frame(&mut self.pm, FrameKind::Data)?;
            (gva.align_down(PageSize::Size4K), g, PageSize::Size4K)
        };
        {
            let mut view = self.vm.guest_view(&mut self.pm);
            let occupied_l2_slot = if size == PageSize::Size2M {
                self.gpt.entry_pa(&view, gbase, 2).filter(|slot| {
                    dmt_pgtable::pte::Pte(dmt_mem::MemoryOps::read_word(&view, *slot)).present()
                })
            } else {
                None
            };
            if let Some(slot) = occupied_l2_slot {
                // The L2 slot holds a pointer to the (empty) TEA-L1 table;
                // replace it with a huge leaf, as the kernel replaces a
                // PMD for THP.
                dmt_mem::MemoryOps::write_word(
                    &mut view,
                    slot,
                    dmt_pgtable::pte::Pte::huge_leaf(
                        gframe,
                        PteFlags::WRITABLE | PteFlags::USER,
                    )
                    .raw(),
                );
            } else {
                self.gpt.map(
                    &mut view,
                    gbase,
                    PhysAddr::from_pfn(gframe),
                    size,
                    PteFlags::WRITABLE | PteFlags::USER,
                )?;
            }
        }
        // Shadow sync: gVA -> hPA (one VM exit). With a 2 MiB guest page
        // over 2 MiB host backing the shadow entry is huge as well.
        let hpa = self
            .vm
            .gpa_to_hpa(PhysAddr::from_pfn(gframe))
            .expect("guest frame must be backed");
        self.spt.sync_mapping(
            &mut self.pm,
            gbase,
            hpa,
            size,
            PteFlags::WRITABLE | PteFlags::USER,
        )?;
        self.faults += 1;
        Ok(true)
    }

    /// Populate a whole range.
    ///
    /// # Errors
    ///
    /// See [`guest_populate`](Self::guest_populate).
    pub fn guest_populate_range(&mut self, base: VirtAddr, len: u64) -> Result<u64, VirtError> {
        let step = if self.guest_thp {
            PageSize::Size2M
        } else {
            PageSize::Size4K
        };
        let mut faults = 0;
        let mut va = base;
        while va.raw() < base.raw() + len {
            if self.guest_populate(va)? {
                faults += 1;
            }
            // Advance chunk-aligned so unaligned regions' tails are
            // covered too.
            va = VirtAddr(va.align_down(step).raw() + step.bytes());
        }
        Ok(faults)
    }

    /// Software ground-truth translation gVA → hPA (no cycles charged).
    pub fn translate_software(&self, gva: VirtAddr) -> Option<PhysAddr> {
        let view = self.vm.guest_view_ref(&self.pm);
        let (gpa, _) = self.gpt.translate(&view, gva)?;
        self.vm.gpa_to_hpa(gpa)
    }

    /// Vanilla KVM: hardware 2D page walk (Figure 2).
    ///
    /// # Errors
    ///
    /// Propagates walk faults.
    pub fn translate_nested(
        &mut self,
        gva: VirtAddr,
        hier: &mut MemoryHierarchy,
    ) -> Result<NestedWalkOutcome, VirtError> {
        Ok(nested_walk(
            &self.gpt,
            self.vm.hpt(),
            &mut self.pm,
            gva,
            hier,
            &mut self.nested_caches,
        )?)
    }

    /// Shadow paging: a native-length walk of the sPT.
    ///
    /// # Errors
    ///
    /// Propagates walk faults.
    pub fn translate_shadow(
        &mut self,
        gva: VirtAddr,
        hier: &mut MemoryHierarchy,
    ) -> Result<WalkOutcome, VirtError> {
        Ok(walk_dimension(
            self.spt.table(),
            &mut self.pm,
            gva,
            WalkDim::Native,
            hier,
            Some(&mut self.shadow_pwc),
        )?)
    }

    /// pvDMT: two memory references through the gTEA table.
    ///
    /// # Errors
    ///
    /// [`DmtError::NotCovered`] means fall back to
    /// [`translate_nested`](Self::translate_nested).
    pub fn translate_pvdmt(
        &mut self,
        gva: VirtAddr,
        hier: &mut MemoryHierarchy,
    ) -> Result<FetchOutcome, DmtError> {
        fetcher::fetch_virt_pv(
            &self.guest_regs,
            &self.gtea_table,
            &self.host_regs,
            &mut self.pm,
            hier,
            gva,
        )
    }

    /// Plain DMT (no paravirtualization): three memory references.
    ///
    /// # Errors
    ///
    /// [`DmtError::NotCovered`] means fall back to the 2D walk.
    pub fn translate_dmt(
        &mut self,
        gva: VirtAddr,
        hier: &mut MemoryHierarchy,
    ) -> Result<FetchOutcome, DmtError> {
        fetcher::fetch_virt_unpv(
            &self.guest_regs,
            &self.host_regs,
            &mut self.pm,
            hier,
            gva,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(mode: GuestTeaMode, thp: bool) -> VirtMachine {
        let mut m = VirtMachine::new(256 << 20, 32 << 20, mode, thp).unwrap();
        let base = VirtAddr(0x7f00_0000_0000);
        m.guest_mmap(base, 8 << 20).unwrap();
        m.guest_populate_range(base, 8 << 20).unwrap();
        m
    }

    const GVA: VirtAddr = VirtAddr(0x7f00_0000_0000 + 5 * 4096 + 0x21);

    #[test]
    fn all_paths_agree_on_the_translation() {
        let mut m = machine(GuestTeaMode::Pv, false);
        let mut hier = MemoryHierarchy::default();
        let nested = m.translate_nested(GVA, &mut hier).unwrap();
        let shadow = m.translate_shadow(GVA, &mut hier).unwrap();
        let pv = m.translate_pvdmt(GVA, &mut hier).unwrap();
        assert_eq!(nested.pa, shadow.pa);
        assert_eq!(nested.pa, pv.pa);
    }

    #[test]
    fn pvdmt_takes_two_references() {
        let mut m = machine(GuestTeaMode::Pv, false);
        let mut hier = MemoryHierarchy::default();
        let out = m.translate_pvdmt(GVA, &mut hier).unwrap();
        assert_eq!(out.refs(), 2);
    }

    #[test]
    fn unpv_dmt_takes_three_references() {
        let mut m = machine(GuestTeaMode::Unpv, false);
        let mut hier = MemoryHierarchy::default();
        let out = m.translate_dmt(GVA, &mut hier).unwrap();
        assert_eq!(out.refs(), 3);
        // And it agrees with the 2D walk.
        let nested = m.translate_nested(GVA, &mut hier).unwrap();
        assert_eq!(out.pa, nested.pa);
    }

    #[test]
    fn cold_2d_walk_is_24_refs_warm_is_short() {
        let mut m = machine(GuestTeaMode::Pv, false);
        m.nested_caches = NestedCaches::none();
        let mut hier = MemoryHierarchy::default();
        let cold = m.translate_nested(GVA, &mut hier).unwrap();
        assert_eq!(cold.refs(), 24);
        m.nested_caches = NestedCaches::xeon_gold_6138();
        let _ = m.translate_nested(GVA, &mut hier).unwrap();
        let warm = m.translate_nested(GVA, &mut hier).unwrap();
        assert!(warm.refs() <= 3);
    }

    #[test]
    fn shadow_walk_is_native_length_with_exit_accounting() {
        let mut m = machine(GuestTeaMode::Pv, false);
        let mut hier = MemoryHierarchy::default();
        let out = m.translate_shadow(GVA, &mut hier).unwrap();
        assert!(out.refs() <= 4);
        // Every populate cost one sync (VM exit).
        assert_eq!(m.spt.sync_events(), m.faults());
        assert_eq!(m.faults(), 8 << 20 >> 12);
    }

    #[test]
    fn thp_guest_uses_2m_pages_everywhere() {
        let mut m = machine(GuestTeaMode::Pv, true);
        let mut hier = MemoryHierarchy::default();
        let pv = m.translate_pvdmt(GVA, &mut hier).unwrap();
        assert_eq!(pv.refs(), 2);
        assert_eq!(pv.size, PageSize::Size2M);
        let nested = m.translate_nested(GVA, &mut hier).unwrap();
        assert_eq!(nested.pa, pv.pa);
        assert_eq!(nested.guest_size, PageSize::Size2M);
    }

    #[test]
    fn vanilla_thp_cold_2d_walk_is_15_refs() {
        // Figure 16b: with 2 MiB pages in both dimensions the 2D walk is
        // 3 groups x (3 host + 1 guest) + 3 = 15 — measured on a vanilla
        // guest whose table pages are ordinary guest frames.
        let mut m = machine(GuestTeaMode::None, true);
        m.nested_caches = NestedCaches::none();
        let mut hier = MemoryHierarchy::default();
        let cold = m.translate_nested(GVA, &mut hier).unwrap();
        assert_eq!(cold.refs(), 15);
    }

    #[test]
    fn vanilla_4k_cold_2d_walk_is_24_refs() {
        let mut m = machine(GuestTeaMode::None, false);
        m.nested_caches = NestedCaches::none();
        let mut hier = MemoryHierarchy::default();
        let cold = m.translate_nested(GVA, &mut hier).unwrap();
        assert_eq!(cold.refs(), 24);
        // And with no TEAs, pvDMT has nothing to work with.
        assert!(matches!(
            m.translate_pvdmt(GVA, &mut hier),
            Err(DmtError::NotCovered { .. })
        ));
    }

    #[test]
    fn pv_hypercalls_are_counted() {
        let m = machine(GuestTeaMode::Pv, false);
        assert_eq!(m.hypercalls.calls, 1);
        assert!(m.hypercalls.frames_granted >= 4);
        let m2 = machine(GuestTeaMode::Unpv, false);
        assert_eq!(m2.hypercalls.calls, 0, "unpv never exits for TEAs");
    }

    #[test]
    fn uncovered_gva_falls_back() {
        let mut m = machine(GuestTeaMode::Pv, false);
        let mut hier = MemoryHierarchy::default();
        assert!(matches!(
            m.translate_pvdmt(VirtAddr(0x1000), &mut hier),
            Err(DmtError::NotCovered { .. })
        ));
    }
}
