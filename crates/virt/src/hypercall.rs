//! The `KVM_HC_ALLOC_TEA` hypercall (§4.5.1, §4.6.2).
//!
//! pvDMT requires gTEAs to be contiguous in *host* physical memory, so
//! guests cannot allocate them locally. The guest instead passes an array
//! of requested gTEAs to the host; the host allocates contiguous host
//! regions (splitting a request when contiguity is unavailable), registers
//! each region in the per-VM gTEA table, and maps the pages into the
//! guest's physical space (`vm_insert_pages`) so the guest can write PTEs
//! without further VM exits. Exactly one VM exit per hypercall.

use crate::vm::Vm;
use crate::VirtError;
use dmt_core::gtea::GteaTable;
use dmt_core::vtmap::VmaTeaMapping;
use dmt_mem::buddy::FrameKind;
use dmt_mem::{MemError, PageSize, Pfn, PhysMemory, VirtAddr};

/// Fixed hypercall overhead (context switch + KVM handling, excluding
/// memory allocation) in cycles: the paper measures 1.88 µs in a VM,
/// ≈ 3 760 cycles at the 2 GHz of the modeled Xeon Gold 6138 (§6.3).
pub const HYPERCALL_BASE_CYCLES: u64 = 3_760;

/// The same overhead under nested virtualization: 10.75 µs ≈ 21 500
/// cycles (§6.3) — exits are costlier when they cascade through L1.
pub const NESTED_HYPERCALL_BASE_CYCLES: u64 = 21_500;

/// One requested gTEA: a guest VMA region needing direct translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeaRequest {
    /// Guest-virtual base of the VMA (or cluster).
    pub base: VirtAddr,
    /// Length in bytes.
    pub len: u64,
    /// Page size whose PTEs the gTEA will hold.
    pub size: PageSize,
}

/// One granted gTEA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeaGrant {
    /// The guest-register-ready mapping: gTEA ID attached, `tea_base`
    /// holding the *guest-physical* frame where the host mapped the TEA
    /// pages (so the guest can install them as its table pages).
    pub mapping: VmaTeaMapping,
    /// Host-physical base of the gTEA (host bookkeeping; never exposed to
    /// the guest).
    pub host_base: Pfn,
}

/// Hypercall accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HypercallStats {
    /// Hypercalls (VM exits) issued.
    pub calls: u64,
    /// Requests that had to be split for contiguity.
    pub splits: u64,
    /// Total gTEA frames granted.
    pub frames_granted: u64,
}

/// Host-side handler for `KVM_HC_ALLOC_TEA`.
///
/// Takes the request array, returns the granted mappings (possibly more
/// than one per request after splitting). Returns an empty grant list for
/// a request only when no TEA can be allocated at all, mirroring the
/// paper's "returns an empty array if no TEA can be allocated".
///
/// # Errors
///
/// Only fails on internal inconsistencies (e.g. the guest address space
/// cannot absorb the inserted pages).
pub fn kvm_hc_alloc_tea(
    pm: &mut PhysMemory,
    vm: &mut Vm,
    gtea_table: &mut GteaTable,
    requests: &[TeaRequest],
    stats: &mut HypercallStats,
) -> Result<Vec<TeaGrant>, VirtError> {
    stats.calls += 1;
    let mut grants = Vec::new();
    for req in requests {
        let proto = VmaTeaMapping::new(req.base, req.len, req.size, Pfn(0));
        alloc_recursive(pm, vm, gtea_table, proto, stats, &mut grants)?;
    }
    Ok(grants)
}

fn alloc_recursive(
    pm: &mut PhysMemory,
    vm: &mut Vm,
    gtea_table: &mut GteaTable,
    proto: VmaTeaMapping,
    stats: &mut HypercallStats,
    grants: &mut Vec<TeaGrant>,
) -> Result<(), VirtError> {
    let frames = proto.tea_frames();
    match pm.alloc_contig(frames, FrameKind::Tea) {
        Ok(host_base) => {
            let id = gtea_table.register(host_base, frames);
            let gpa = vm.insert_host_pages(pm, host_base, frames)?;
            let mapping = VmaTeaMapping::new(
                proto.base(),
                proto.covered_bytes(),
                proto.page_size(),
                gpa.pfn(),
            )
            .with_gtea_id(id);
            stats.frames_granted += frames;
            grants.push(TeaGrant { mapping, host_base });
            Ok(())
        }
        Err(MemError::NoContiguousRun { .. }) => match proto.split(Pfn(0)) {
            Some((lo, hi)) => {
                stats.splits += 1;
                alloc_recursive(pm, vm, gtea_table, lo, stats, grants)?;
                alloc_recursive(pm, vm, gtea_table, hi, stats, grants)
            }
            None => Ok(()), // cannot satisfy: grant nothing for this piece
        },
        Err(e) => Err(VirtError::Mem(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_registers_and_inserts() {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut vm = Vm::new(&mut pm, 8 << 20, PageSize::Size4K).unwrap();
        let mut table = GteaTable::new();
        let mut stats = HypercallStats::default();
        let grants = kvm_hc_alloc_tea(
            &mut pm,
            &mut vm,
            &mut table,
            &[TeaRequest {
                base: VirtAddr(0x7f00_0000_0000),
                len: 8 << 20,
                size: PageSize::Size4K,
            }],
            &mut stats,
        )
        .unwrap();
        assert_eq!(grants.len(), 1);
        let g = &grants[0];
        let id = g.mapping.gtea_id().unwrap();
        // The gTEA table resolves to the host base.
        assert_eq!(
            table.resolve(id, 0).unwrap(),
            dmt_mem::PhysAddr::from_pfn(g.host_base)
        );
        // The guest sees the same memory at the granted gPA.
        assert_eq!(
            vm.gpa_to_hpa(dmt_mem::PhysAddr(g.mapping.tea_base().0 << 12)),
            Some(dmt_mem::PhysAddr::from_pfn(g.host_base))
        );
        assert_eq!(stats.calls, 1);
        assert_eq!(stats.frames_granted, 4); // 8 MiB / 2 MiB spans
    }

    #[test]
    fn fragmented_host_splits_grants() {
        let mut pm = PhysMemory::new_bytes(32 << 20);
        let mut vm = Vm::new(&mut pm, 4 << 20, PageSize::Size4K).unwrap();
        // Shatter remaining host memory into <4-frame runs.
        let mut held = Vec::new();
        while pm.buddy().free_frames() > 0 {
            held.push(pm.alloc_frame(FrameKind::PageTable).unwrap());
        }
        held.sort();
        for (i, f) in held.iter().enumerate() {
            if i % 2 == 0 {
                pm.free_frame(*f).unwrap();
            }
        }
        let mut table = GteaTable::new();
        let mut stats = HypercallStats::default();
        let grants = kvm_hc_alloc_tea(
            &mut pm,
            &mut vm,
            &mut table,
            &[TeaRequest {
                base: VirtAddr(0),
                len: 8 << 20, // needs 4 contiguous TEA frames
                size: PageSize::Size4K,
            }],
            &mut stats,
        )
        .unwrap();
        assert!(grants.len() > 1, "split into {} grants", grants.len());
        assert!(stats.splits > 0);
        // The grants partition the coverage.
        let total: u64 = grants.iter().map(|g| g.mapping.covered_bytes()).sum();
        assert_eq!(total, 8 << 20);
    }

    #[test]
    fn unsatisfiable_request_returns_empty_grants() {
        // Exhaust host memory down to sub-frame runs: the hypercall
        // returns an empty array, per §4.5.1.
        let mut pm = PhysMemory::new_bytes(32 << 20);
        let mut vm = Vm::new(&mut pm, 4 << 20, PageSize::Size4K).unwrap();
        while pm.buddy().free_frames() > 0 {
            pm.alloc_frame(FrameKind::PageTable).unwrap();
        }
        let mut table = GteaTable::new();
        let mut stats = HypercallStats::default();
        let grants = kvm_hc_alloc_tea(
            &mut pm,
            &mut vm,
            &mut table,
            &[TeaRequest {
                base: VirtAddr(0x7f00_0000_0000),
                len: 64 << 20,
                size: PageSize::Size4K,
            }],
            &mut stats,
        )
        .unwrap();
        assert!(grants.is_empty(), "no TEA can be allocated");
        assert_eq!(table.len(), 0);
        assert_eq!(stats.calls, 1, "the exit still happened");
    }

    #[test]
    fn one_exit_per_hypercall_not_per_request() {
        let mut pm = PhysMemory::new_bytes(64 << 20);
        let mut vm = Vm::new(&mut pm, 4 << 20, PageSize::Size4K).unwrap();
        let mut table = GteaTable::new();
        let mut stats = HypercallStats::default();
        let reqs: Vec<TeaRequest> = (0..5)
            .map(|i| TeaRequest {
                base: VirtAddr((0x100 + i) << 30),
                len: 2 << 20,
                size: PageSize::Size4K,
            })
            .collect();
        kvm_hc_alloc_tea(&mut pm, &mut vm, &mut table, &reqs, &mut stats).unwrap();
        assert_eq!(stats.calls, 1, "batched requests share one VM exit");
        assert_eq!(table.len(), 5);
    }
}
